package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {255, 0}, {256, 1}, {257, 2 - 1},
		{511, 1}, {512, 2}, {1 << 20, 13}, {1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if HistUpperNS(0) != 256 {
		t.Errorf("HistUpperNS(0) = %d, want 256", HistUpperNS(0))
	}
	if HistUpperNS(HistBuckets-1) != -1 {
		t.Errorf("last bucket should be unbounded")
	}
	var h Hist
	h.Observe(100)
	h.Observe(300)
	h.Observe(300)
	if h[0] != 1 || h[1] != 2 {
		t.Errorf("hist = %v", h[:3])
	}
}

func TestShardNilSafe(t *testing.T) {
	var s *Shard
	t0 := s.Begin()
	if !t0.IsZero() {
		t.Errorf("nil Begin should return zero time")
	}
	s.End(StageExec, t0)
	s.RecordExec(time.Millisecond, false, true)
	s.EndIdle(t0)
	s.EndLease(t0)
	var m *Metrics
	m.MergeShard(s) // both nil: no-op
}

func TestMergeShardFoldsAndZeroes(t *testing.T) {
	m := NewMetrics("btree", "pmfuzz", 2, 5, 1e9)
	sh := &Shard{Execs: 10, Hangs: 1, Faults: 2, Rounds: 3, LeaseNS: 100, IdleNS: 50}
	sh.StageNS[StageExec] = 1000
	sh.StageOps[StageExec] = 10
	sh.ExecHist.Observe(300)
	m.MergeShard(sh)
	if *sh != (Shard{}) {
		t.Errorf("MergeShard must zero the shard: %+v", sh)
	}
	sh2 := &Shard{Execs: 5}
	m.MergeShard(sh2)
	s := m.Snapshot()
	if s.Execs != 15 || s.Hangs != 1 || s.Faults != 2 || s.Rounds != 3 {
		t.Errorf("snapshot counters wrong: %+v", s)
	}
	if s.Stages[StageExec].NS != 1000 || s.Stages[StageExec].Ops != 10 {
		t.Errorf("stage exec wrong: %+v", s.Stages[StageExec])
	}
	if s.ExecHist[1].Count != 1 {
		t.Errorf("hist not merged: %+v", s.ExecHist[:3])
	}
}

func TestSnapshotGaugesAndRates(t *testing.T) {
	m := NewMetrics("btree", "pmfuzz", 1, 5, 1e9)
	m.SetGauges(Gauges{
		SimNS: 42, QueueLen: 10, PMPaths: 20, BranchCov: 30,
		Images: 7, CrashImages: 3, FavHigh: 4, PendingFavs: 2,
		PendingTotal: 6, MaxDepth: 5,
	})
	m.SetStoreStats(StoreStats{
		Puts: 100, Dedups: 40, DeltaPuts: 30,
		CacheHits: 8, CacheMisses: 2, RawBytes: 1000, CompressedBytes: 250,
	})
	s := m.Snapshot()
	if s.SimNS != 42 || s.QueueLen != 10 || s.CrashImages != 3 || s.MaxDepth != 5 {
		t.Errorf("gauges wrong: %+v", s)
	}
	if got := s.DedupRate(); got != 0.4 {
		t.Errorf("DedupRate = %v, want 0.4", got)
	}
	if got := s.DeltaRate(); got != 0.5 {
		t.Errorf("DeltaRate = %v, want 0.5", got)
	}
	if got := s.CompressionRatio(); got != 4 {
		t.Errorf("CompressionRatio = %v, want 4", got)
	}
}

func TestStatusLineFields(t *testing.T) {
	m := NewMetrics("btree", "pmfuzz", 2, 5, 5e8)
	m.MergeShard(&Shard{Execs: 720})
	m.SetGauges(Gauges{SimNS: 12e7, QueueLen: 317, PMPaths: 330, Images: 237})
	line := StatusLine(m.Snapshot())
	for _, want := range []string{"btree/pmfuzz w2", "execs 720", "q 317", "pm 330", "imgs 237", "sim 120.0/500.0 ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("status line missing %q:\n%s", want, line)
		}
	}
}

func TestFuzzerStatsFormat(t *testing.T) {
	m := NewMetrics("btree", "pmfuzz", 1, 5, 5e8)
	m.MergeShard(&Shard{Execs: 100, Rounds: 4})
	now := time.Unix(1700000000, 0)
	out := FuzzerStats(m.Snapshot(), now)
	seen := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("bad fuzzer_stats line: %q", line)
		}
		seen[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	for _, k := range []string{
		"start_time", "last_update", "fuzzer_pid", "afl_banner",
		"cycles_done", "execs_done", "execs_per_sec", "paths_total",
		"pending_favs", "bitmap_cvg", "unique_crashes", "unique_hangs",
		"pmfuzz_sim_ms", "pmfuzz_pm_paths", "pmfuzz_stage_exec_ms",
	} {
		if _, ok := seen[k]; !ok {
			t.Errorf("fuzzer_stats missing key %q", k)
		}
	}
	if seen["execs_done"] != "100" {
		t.Errorf("execs_done = %q, want 100", seen["execs_done"])
	}
	if seen["cycles_done"] != "4" {
		t.Errorf("cycles_done = %q, want 4", seen["cycles_done"])
	}
	if seen["last_update"] != "1700000000" {
		t.Errorf("last_update = %q", seen["last_update"])
	}
}

func TestPlotRowColumns(t *testing.T) {
	m := NewMetrics("btree", "pmfuzz", 1, 5, 5e8)
	m.SetGauges(Gauges{QueueLen: 317, PMPaths: 330, Images: 237})
	row := PlotRow(m.Snapshot(), time.Unix(1700000000, 0))
	cols := strings.Split(row, ", ")
	headerCols := strings.Split(strings.TrimPrefix(plotHeader, "# "), ", ")
	if len(cols) != len(headerCols) {
		t.Fatalf("plot row has %d columns, header has %d:\n%s\n%s", len(cols), len(headerCols), plotHeader, row)
	}
	if cols[0] != "1700000000" {
		t.Errorf("unix_time column = %q", cols[0])
	}
	if !strings.HasSuffix(cols[6], "%") {
		t.Errorf("map_size column should be a percentage: %q", cols[6])
	}
}

func TestTraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := NewTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(SessionEvent{T: "session", Workload: "btree", Seed: 5, Workers: 1, BudgetNS: 1e9})
	tr.Emit(AdmitEvent{T: "admit", SimNS: 100, ID: 1, Favored: 2})
	tr.Emit(EndEvent{T: "end", SimNS: 200, Execs: 10})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var types []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.T)
	}
	want := []string{"session", "admit", "end"}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Errorf("event types = %v, want %v", types, want)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Emit(RoundEvent{T: "round"})
	if err := tr.Close(); err != nil {
		t.Errorf("nil trace Close: %v", err)
	}
	var s *Session
	if s.Trace() != nil {
		t.Errorf("nil session Trace should be nil")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil session Close: %v", err)
	}
}

func TestSessionSinks(t *testing.T) {
	dir := t.TempDir()
	var status bytes.Buffer
	s, err := NewSession(Config{
		Workload: "btree", FuzzConfig: "pmfuzz", Workers: 1, Seed: 5, BudgetNS: 1e9,
		StatusEvery: 10 * time.Millisecond, StatusW: &status,
		OutDir:    filepath.Join(dir, "out"),
		TracePath: filepath.Join(dir, "trace.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.M.MergeShard(&Shard{Execs: 42})
	s.Trace().Emit(SessionEvent{T: "session", Workload: "btree"})
	time.Sleep(30 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status.String(), "execs 42") {
		t.Errorf("status output missing execs: %q", status.String())
	}
	stats, err := os.ReadFile(filepath.Join(dir, "out", "fuzzer_stats"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "execs_done") {
		t.Errorf("fuzzer_stats content wrong:\n%s", stats)
	}
	plot, err := os.ReadFile(filepath.Join(dir, "out", "plot_data"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(plot)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "# unix_time") {
		t.Errorf("plot_data should have header + rows:\n%s", plot)
	}
	traceB, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceB), `"t":"session"`) {
		t.Errorf("trace missing session event:\n%s", traceB)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	s, err := NewSession(Config{
		Workload: "btree", FuzzConfig: "pmfuzz", Workers: 1, Seed: 5, BudgetNS: 1e9,
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.M.MergeShard(&Shard{Execs: 7})

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	vars := get("/debug/vars")
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if _, ok := parsed["pmfuzz"]; !ok {
		t.Errorf("expvar missing pmfuzz key")
	}
	var snap Snapshot
	if err := json.Unmarshal(parsed["pmfuzz"], &snap); err != nil {
		t.Fatalf("pmfuzz expvar not a snapshot: %v", err)
	}
	if snap.Execs != 7 {
		t.Errorf("expvar execs = %d, want 7", snap.Execs)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE pmfuzz_execs_total counter",
		`pmfuzz_execs_total{workload="btree",config="pmfuzz"} 7`,
		"# TYPE pmfuzz_exec_duration_seconds histogram",
		`le="+Inf"`,
		"pmfuzz_exec_duration_seconds_count",
		`stage="exec"`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	m := NewMetrics("w", "c", 1, 0, 0)
	sh := &Shard{}
	sh.ExecHist.Observe(100) // bucket 0
	sh.ExecHist.Observe(300) // bucket 1
	sh.ExecHist.Observe(300)
	m.MergeShard(sh)
	out := PrometheusText(m.Snapshot())
	if !strings.Contains(out, `le="2.56e-07"`+"} 1") {
		t.Errorf("first bucket should be cumulative 1:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"`+"} 3") {
		t.Errorf("+Inf bucket should be 3")
	}
	if !strings.Contains(out, "pmfuzz_exec_duration_seconds_count{") || !strings.Contains(out, "} 3\n") {
		t.Errorf("count should be 3")
	}
}

func TestStageString(t *testing.T) {
	if StageExec.String() != "exec" || StagePut.String() != "imgstore_put" {
		t.Errorf("stage names wrong")
	}
	if Stage(99).String() != "unknown" {
		t.Errorf("out-of-range stage should be unknown")
	}
}
