package obs

// The structured event trace: one JSON object per line, recording the
// discrete discoveries of a session — corpus admissions, image
// harvests, fault discoveries, worker round boundaries — each stamped
// with SIMULATED time only. Because the engine is deterministic per
// (Seed, Workers) and no wall-clock value enters an event, the trace
// file itself is byte-identical across replays of the same session:
// diffing two traces diffs the sessions.

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
)

// Trace writes JSONL events. A nil *Trace drops every Emit, so callers
// never guard. Writers are buffered; Close flushes.
type Trace struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewTrace opens (truncating) a JSONL trace file.
func NewTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 64<<10)
	return &Trace{f: f, w: w, enc: json.NewEncoder(w)}, nil
}

// Emit appends one event (any JSON-marshalable value; the package's
// *Event structs carry a "t" type tag). Errors are sticky and surfaced
// by Close.
func (t *Trace) Emit(v interface{}) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(v)
}

// Close flushes and closes the trace, returning the first error seen.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.err
	if ferr := t.w.Flush(); err == nil {
		err = ferr
	}
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SessionEvent opens every trace: the session parameters.
type SessionEvent struct {
	T        string `json:"t"` // "session"
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	Workers  int    `json:"workers"`
	BudgetNS int64  `json:"budget_ns"`
}

// AdmitEvent records an input admitted to the corpus (Figure 11 step ②
// for inputs). Worker 0 is the serial engine / coordinator; parallel
// workers are 1-based. Stage is 2 for admissions made inside a stage-2
// sub-campaign and omitted in stage 1, so single-stage traces are
// byte-identical to pre-two-stage ones.
type AdmitEvent struct {
	T          string `json:"t"` // "admit"
	SimNS      int64  `json:"sim_ns"`
	Worker     int    `json:"worker"`
	ID         int    `json:"id"`
	Parent     int    `json:"parent"`
	Favored    int    `json:"favored"`
	NewBranch  bool   `json:"new_branch"`
	NewPM      bool   `json:"new_pm"`
	CrashImage bool   `json:"crash_image"`
	HasImage   bool   `json:"has_image"`
	Stage      int    `json:"stage,omitempty"`
}

// HarvestEvent records a freshly generated PM image entering the store
// and the corpus (Figure 11 steps ③–⑤). Image is the content hash's
// short hex prefix.
type HarvestEvent struct {
	T          string `json:"t"` // "harvest"
	SimNS      int64  `json:"sim_ns"`
	Worker     int    `json:"worker"`
	ID         int    `json:"id"`
	Parent     int    `json:"parent"`
	Image      string `json:"image"`
	CrashImage bool   `json:"crash_image"`
	Stage      int    `json:"stage,omitempty"`
}

// FaultEvent records a deduplicated fault bucket's first detection
// (§5.4.1's time-to-detection).
type FaultEvent struct {
	T      string `json:"t"` // "fault"
	SimNS  int64  `json:"sim_ns"`
	Worker int    `json:"worker"`
	Execs  int    `json:"execs"`
	Msg    string `json:"msg"`
	Stage  int    `json:"stage,omitempty"`
}

// ClassEvent records one pruned oracle sweep's equivalence-class
// statistics: how many representative classes the sweep partitioned
// into, how many crash points were absorbed as class members (hits),
// how many points were judged in total, and how many recovery
// executions were actually spent. Emitted only when sweep pruning is
// active, so unpruned traces are byte-identical to pre-pruning ones
// modulo nothing at all.
type ClassEvent struct {
	T          string `json:"t"` // "class"
	SimNS      int64  `json:"sim_ns"`
	Worker     int    `json:"worker"`
	Classes    int    `json:"classes"`
	Hits       int    `json:"hits"`
	Checked    int    `json:"checked"`
	Recoveries int    `json:"recoveries"`
	Stage      int    `json:"stage,omitempty"`
}

// InvEvent records invariant-oracle activity: the mined-set freeze
// (Obs/Mined set, check fields zero) or one check of a test case's
// sweep against the frozen set (Checked/Violations/Dropped plus the
// value-leg class statistics). Emitted only when the invariant oracle
// is enabled, so traces without it are byte-identical to pre-feature
// ones.
type InvEvent struct {
	T          string `json:"t"` // "inv"
	SimNS      int64  `json:"sim_ns"`
	Worker     int    `json:"worker"`
	Obs        int    `json:"obs,omitempty"`
	Mined      int    `json:"mined,omitempty"`
	Checked    int    `json:"checked,omitempty"`
	Violations int    `json:"violations,omitempty"`
	Dropped    int    `json:"dropped,omitempty"`
	Classes    int    `json:"classes,omitempty"`
	Hits       int    `json:"hits,omitempty"`
	Recoveries int    `json:"recoveries,omitempty"`
	Stage      int    `json:"stage,omitempty"`
}

// RoundEvent records one worker batch merged by the coordinator — the
// fleet's heartbeat. Done marks the worker's budget exhausting.
type RoundEvent struct {
	T        string `json:"t"` // "round"
	SimNS    int64  `json:"sim_ns"`
	Worker   int    `json:"worker"`
	Outcomes int    `json:"outcomes"`
	Done     bool   `json:"done"`
}

// StageEnterEvent marks a stage transition in the two-stage pipeline:
// the scheduler entering stage 1's input-fuzzing loop, or launching one
// stage-2 sub-campaign from a promoted crash image. Emitted only when
// stage 2 is enabled, so single-stage traces carry no stage events.
type StageEnterEvent struct {
	T     string `json:"t"` // "stage_enter"
	SimNS int64  `json:"sim_ns"`
	Stage int    `json:"stage"`
	// Iter is the stage-2 promotion round (the original tool's
	// stage=2,iter=N directories); Campaign is the sub-campaign ordinal
	// within the session. Both are 0 for stage 1.
	Iter     int `json:"iter"`
	Campaign int `json:"campaign"`
	// Root is the promoted crash-image entry's queue ID (-1 for stage
	// 1); Image its content hash prefix; Score its promotion score
	// (2 = oracle-flagged, 1 = novel PM path).
	Root  int    `json:"root"`
	Image string `json:"image,omitempty"`
	Score int    `json:"score,omitempty"`
	// Workers and BudgetNS are the stage's core and simulated-time
	// budgets.
	Workers  int   `json:"workers"`
	BudgetNS int64 `json:"budget_ns"`
}

// StageExitEvent closes a StageEnterEvent with the stage's outcomes.
type StageExitEvent struct {
	T        string `json:"t"` // "stage_exit"
	SimNS    int64  `json:"sim_ns"`
	Stage    int    `json:"stage"`
	Iter     int    `json:"iter"`
	Campaign int    `json:"campaign"`
	// Execs counts executions consumed by the stage; PMPaths the
	// session-wide distinct PM-path count on exit; RecoverySites the
	// session-wide recovery-phase coverage states on exit.
	Execs         int `json:"execs"`
	PMPaths       int `json:"pm_paths"`
	RecoverySites int `json:"recovery_sites"`
}

// SyncEvent records one campaign sync exchange with the shared sync
// directory: entries pushed, entries pulled in (and how many incoming
// cases were dropped as duplicates), tolerated I/O errors, and blob
// bytes moved. Emitted only when a sync directory is configured, so
// solo traces are byte-identical to pre-fleet ones — and because sync
// runs on a wall-clock ticker, a trace containing sync events is
// explicitly not deterministic.
type SyncEvent struct {
	T         string `json:"t"` // "sync"
	SimNS     int64  `json:"sim_ns"`
	Fuzzer    string `json:"fuzzer"`
	Published int    `json:"published"`
	Imported  int    `json:"imported"`
	Dedup     int    `json:"dedup"`
	Errors    int    `json:"errors"`
	BytesIn   int64  `json:"bytes_in"`
	BytesOut  int64  `json:"bytes_out"`
}

// EndEvent closes every trace: the session totals.
type EndEvent struct {
	T        string `json:"t"` // "end"
	SimNS    int64  `json:"sim_ns"`
	Execs    int    `json:"execs"`
	PMPaths  int    `json:"pm_paths"`
	QueueLen int    `json:"queue"`
	Images   int    `json:"images"`
	Faults   int    `json:"faults"`
}
