// Package obs is the fuzzing fleet's telemetry layer: an
// allocation-free, atomics-based registry of counters, gauges, and
// fixed-bucket histograms, fed through per-worker shards so the
// execution hot path never contends on shared state, plus the sinks
// that make a running session observable (AFL-style status lines,
// fuzzer_stats / plot_data files, a JSONL event trace, and an
// expvar/Prometheus HTTP endpoint).
//
// The hard rule of the package: telemetry is READ-ONLY. Nothing here
// feeds back into scheduling, mutation, simulated time, or any other
// engine decision — a session with telemetry attached is bit-identical
// (trajectories, image hashes, bug reports) to the same session without
// it. Wall-clock timestamps exist only inside metrics and sinks; the
// event trace carries simulated-time stamps exclusively, so traces are
// themselves deterministic per (Seed, Workers).
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage identifies a hot-path stage whose wall-clock time is accounted
// separately, answering "where does the time go" across the engine.
type Stage int

// The accounted stages: input/image mutation, target execution, the
// crash-image sweep (journaled run plus materialization), the
// coordinator's batch merge, image-store put/get, and the oracle's
// per-class representative checks.
const (
	StageMutate Stage = iota
	StageExec
	StageSweep
	StageMerge
	StagePut
	StageGet
	StageRepCheck
	numStages
)

// NumStages is the number of accounted stages.
const NumStages = int(numStages)

var stageNames = [numStages]string{"mutate", "exec", "sweep", "merge", "imgstore_put", "imgstore_get", "rep_check"}

// String returns the stage's metric label.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// HistBuckets is the fixed bucket count of the execution-latency
// histogram: power-of-two wall-clock buckets from 256 ns up (the last
// bucket is unbounded).
const HistBuckets = 24

// histMinShift makes bucket 0 cover (0, 256ns].
const histMinShift = 8

// histBucket maps a duration in nanoseconds to its bucket index.
func histBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) - histMinShift
	if b < 0 {
		b = 0
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// HistUpperNS returns the inclusive upper bound of bucket i in
// nanoseconds, or -1 for the final unbounded bucket.
func HistUpperNS(i int) int64 {
	if i >= HistBuckets-1 {
		return -1
	}
	return 1 << uint(histMinShift+i)
}

// Hist is a fixed-bucket latency histogram (single-owner, no atomics).
type Hist [HistBuckets]int64

// Observe counts one duration.
func (h *Hist) Observe(ns int64) { h[histBucket(ns)]++ }

// Shard is one worker's private metrics shard: plain counters with a
// single goroutine owner, merged into the shared Metrics by the
// coordinator while the worker is parked between batches (the same
// exclusive-access window instr.Virgin.MergeFrom relies on). The hot
// path therefore never touches a shared cache line. All methods are
// nil-receiver safe so an instrumented call site costs one predicted
// branch when telemetry is off.
type Shard struct {
	// Execs counts target executions; Hangs the executions that blew
	// the PM-op limit; Faults the executions that panicked or failed a
	// consistency check (raw, not deduplicated).
	Execs, Hangs, Faults int64
	// StageNS / StageOps accumulate wall nanoseconds and entry counts
	// per accounted stage.
	StageNS  [numStages]int64
	StageOps [numStages]int64
	// LeaseNS / IdleNS split a worker's wall time into lease processing
	// and waiting for the coordinator; Rounds counts leases (or, for the
	// serial engine, parent selections).
	LeaseNS, IdleNS int64
	Rounds          int64
	// ExecHist is the per-execution wall-latency histogram.
	ExecHist Hist
}

// Begin starts a stage timer. On a nil shard it returns the zero time
// and the matching End is a no-op.
func (s *Shard) Begin() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// End accounts the time since t0 to the stage.
func (s *Shard) End(st Stage, t0 time.Time) {
	if s == nil {
		return
	}
	s.StageNS[st] += time.Since(t0).Nanoseconds()
	s.StageOps[st]++
}

// RecordExec accounts one target execution: stage time, the latency
// histogram, and the exec/hang/fault counters. Hangs are counted apart
// from other faults, mirroring AFL's unique_hangs vs unique_crashes
// split.
func (s *Shard) RecordExec(d time.Duration, hang, faulted bool) {
	if s == nil {
		return
	}
	ns := d.Nanoseconds()
	s.Execs++
	s.StageNS[StageExec] += ns
	s.StageOps[StageExec]++
	s.ExecHist.Observe(ns)
	switch {
	case hang:
		s.Hangs++
	case faulted:
		s.Faults++
	}
}

// EndIdle accounts wall time spent parked waiting for a lease.
func (s *Shard) EndIdle(t0 time.Time) {
	if s == nil {
		return
	}
	s.IdleNS += time.Since(t0).Nanoseconds()
}

// EndLease accounts wall time spent processing one lease and counts the
// round.
func (s *Shard) EndLease(t0 time.Time) {
	if s == nil {
		return
	}
	s.LeaseNS += time.Since(t0).Nanoseconds()
	s.Rounds++
}

// Gauges is the point-in-time session state pushed by the engine's
// single coordinating goroutine at sample boundaries. Everything here
// is derived from state the coordinator already owns (queue, virgin
// maps, image store), so pushing it costs the engine nothing new.
type Gauges struct {
	SimNS                                             int64
	QueueLen, PMPaths, BranchCov, Images, CrashImages int
	FavLow, FavMed, FavHigh                           int
	PendingFavs, PendingTotal, MaxDepth               int
}

// Stage2Gauges is the two-stage scheduler's point-in-time state: how
// many crash-image sub-campaigns ran, how many images the promotion
// policy selected or still holds pending, the executions stage 2
// consumed, and the recovery-phase PM coverage states observed.
type Stage2Gauges struct {
	Campaigns, Promoted, Pending int
	Execs                        int64
	RecoverySites                int
}

// InvariantGauges is the invariant oracle's cumulative activity: the
// size of the frozen mined set, sweeps judged against it, violations
// found, and rules self-validation dropped. All zero with the feature
// off.
type InvariantGauges struct {
	Mined, Checks, Violations, Dropped int
}

// StoreStats mirrors the image store's counters (obs cannot import
// imgstore — the dependency points the other way). ClassHits/ClassMisses
// are the sweep-pruning equivalence-class counters: a miss is a fresh
// class, a hit a crash state deduplicated into an existing one.
type StoreStats struct {
	Puts, Dedups, DeltaPuts   int64
	CacheHits, CacheMisses    int64
	RawBytes, CompressedBytes int64
	ClassHits, ClassMisses    int64
}

// SyncStats is the campaign sync layer's cumulative counters: corpus
// entries published to and imported from the shared sync directory,
// imports skipped as duplicates, I/O errors tolerated, and blob bytes
// moved in each direction. Zero for solo sessions.
type SyncStats struct {
	Published, Imported, Dedup, Errors int64
	BytesIn, BytesOut                  int64
}

// Metrics is the shared registry: every field is an atomic scalar, so
// sink goroutines (status ticker, HTTP handlers) snapshot a running
// session without locks and without perturbing it. Writers are the
// coordinator (shard merges, gauge pushes, event counters); the hot
// path writes only to its private Shard.
type Metrics struct {
	workload, config string
	seed, budgetNS   int64
	workers          int
	start            time.Time

	execs, hangs, faults atomic.Int64
	stageNS              [numStages]atomic.Int64
	stageOps             [numStages]atomic.Int64
	leaseNS, idleNS      atomic.Int64
	rounds               atomic.Int64
	execHist             [HistBuckets]atomic.Int64

	admits, harvests, harvestsCrash atomic.Int64
	uniqueFaults                    atomic.Int64

	simNS                                             atomic.Int64
	queueLen, pmPaths, branchCov, images, crashImages atomic.Int64
	favLow, favMed, favHigh                           atomic.Int64
	pendingFavs, pendingTotal, maxDepth               atomic.Int64

	storePuts, storeDedups, storeDeltaPuts atomic.Int64
	cacheHits, cacheMisses                 atomic.Int64
	rawBytes, compressedBytes              atomic.Int64
	classHits, classMisses                 atomic.Int64

	stage2Campaigns, stage2Promoted, stage2Pending atomic.Int64
	stage2Execs, recoverySites                     atomic.Int64

	invMined, invChecks, invViolations, invDropped atomic.Int64

	syncPublished, syncImported, syncDedup, syncErrors atomic.Int64
	syncBytesIn, syncBytesOut                          atomic.Int64

	sinkErrors atomic.Int64
}

// NewMetrics creates a registry stamped with the session parameters.
func NewMetrics(workload, config string, workers int, seed, budgetNS int64) *Metrics {
	return &Metrics{
		workload: workload,
		config:   config,
		seed:     seed,
		budgetNS: budgetNS,
		workers:  workers,
		start:    time.Now(),
	}
}

// MergeShard folds a worker shard into the registry and zeroes it for
// the next round. Called only while the shard's owner is parked.
func (m *Metrics) MergeShard(s *Shard) {
	if m == nil || s == nil {
		return
	}
	m.execs.Add(s.Execs)
	m.hangs.Add(s.Hangs)
	m.faults.Add(s.Faults)
	for i := 0; i < int(numStages); i++ {
		m.stageNS[i].Add(s.StageNS[i])
		m.stageOps[i].Add(s.StageOps[i])
	}
	m.leaseNS.Add(s.LeaseNS)
	m.idleNS.Add(s.IdleNS)
	m.rounds.Add(s.Rounds)
	for i, c := range s.ExecHist {
		if c != 0 {
			m.execHist[i].Add(c)
		}
	}
	*s = Shard{}
}

// CountAdmit counts one input admission to the corpus.
func (m *Metrics) CountAdmit() { m.admits.Add(1) }

// CountHarvest counts one freshly stored generated image.
func (m *Metrics) CountHarvest(crash bool) {
	m.harvests.Add(1)
	if crash {
		m.harvestsCrash.Add(1)
	}
}

// CountUniqueFault counts one deduplicated fault bucket.
func (m *Metrics) CountUniqueFault() { m.uniqueFaults.Add(1) }

// CountSinkError counts one failed sink write (fuzzer_stats rewrite or
// plot_data append). Sinks are best-effort — a full disk must never
// stop the engine — but the failures must not vanish either: the count
// lands in the registry, the pmfuzz_sink_errors stats key, and the
// fleet monitor's per-member rows.
func (m *Metrics) CountSinkError() {
	if m == nil {
		return
	}
	m.sinkErrors.Add(1)
}

// SetGauges publishes a coordinator snapshot of session state.
func (m *Metrics) SetGauges(g Gauges) {
	m.simNS.Store(g.SimNS)
	m.queueLen.Store(int64(g.QueueLen))
	m.pmPaths.Store(int64(g.PMPaths))
	m.branchCov.Store(int64(g.BranchCov))
	m.images.Store(int64(g.Images))
	m.crashImages.Store(int64(g.CrashImages))
	m.favLow.Store(int64(g.FavLow))
	m.favMed.Store(int64(g.FavMed))
	m.favHigh.Store(int64(g.FavHigh))
	m.pendingFavs.Store(int64(g.PendingFavs))
	m.pendingTotal.Store(int64(g.PendingTotal))
	m.maxDepth.Store(int64(g.MaxDepth))
}

// SetStage2 publishes the two-stage scheduler's state.
func (m *Metrics) SetStage2(g Stage2Gauges) {
	m.stage2Campaigns.Store(int64(g.Campaigns))
	m.stage2Promoted.Store(int64(g.Promoted))
	m.stage2Pending.Store(int64(g.Pending))
	m.stage2Execs.Store(g.Execs)
	m.recoverySites.Store(int64(g.RecoverySites))
}

// SetInvariant publishes the invariant oracle's cumulative activity.
func (m *Metrics) SetInvariant(g InvariantGauges) {
	m.invMined.Store(int64(g.Mined))
	m.invChecks.Store(int64(g.Checks))
	m.invViolations.Store(int64(g.Violations))
	m.invDropped.Store(int64(g.Dropped))
}

// SetSyncStats publishes the campaign sync layer's counters. Nil-safe
// so the sync pump works on sessions without telemetry attached.
func (m *Metrics) SetSyncStats(st SyncStats) {
	if m == nil {
		return
	}
	m.syncPublished.Store(st.Published)
	m.syncImported.Store(st.Imported)
	m.syncDedup.Store(st.Dedup)
	m.syncErrors.Store(st.Errors)
	m.syncBytesIn.Store(st.BytesIn)
	m.syncBytesOut.Store(st.BytesOut)
}

// SetStoreStats publishes the image store's counters.
func (m *Metrics) SetStoreStats(st StoreStats) {
	m.storePuts.Store(st.Puts)
	m.storeDedups.Store(st.Dedups)
	m.storeDeltaPuts.Store(st.DeltaPuts)
	m.cacheHits.Store(st.CacheHits)
	m.cacheMisses.Store(st.CacheMisses)
	m.rawBytes.Store(st.RawBytes)
	m.compressedBytes.Store(st.CompressedBytes)
	m.classHits.Store(st.ClassHits)
	m.classMisses.Store(st.ClassMisses)
}

// StageSnap is one stage's accounted totals in a Snapshot.
type StageSnap struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
	Ops  int64  `json:"ops"`
}

// HistBucketSnap is one latency bucket in a Snapshot. UpperNS is -1 for
// the unbounded last bucket.
type HistBucketSnap struct {
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// Snapshot is a plain-value copy of the registry for the sinks. Each
// field is read atomically; the set is consistent enough for reporting
// (not a single instant), exactly like imgstore.Stats.
type Snapshot struct {
	Workload string  `json:"workload"`
	Config   string  `json:"config"`
	Seed     int64   `json:"seed"`
	Workers  int     `json:"workers"`
	BudgetNS int64   `json:"budget_ns"`
	WallSecs float64 `json:"wall_secs"`

	Execs        int64   `json:"execs"`
	ExecsPerSec  float64 `json:"execs_per_sec"`
	Hangs        int64   `json:"hangs"`
	Faults       int64   `json:"faults"`
	UniqueFaults int64   `json:"unique_faults"`

	SimNS       int64 `json:"sim_ns"`
	QueueLen    int64 `json:"queue_len"`
	PMPaths     int64 `json:"pm_paths"`
	BranchCov   int64 `json:"branch_cov"`
	Images      int64 `json:"images"`
	CrashImages int64 `json:"crash_images"`

	FavLow       int64 `json:"fav_low"`
	FavMed       int64 `json:"fav_med"`
	FavHigh      int64 `json:"fav_high"`
	PendingFavs  int64 `json:"pending_favs"`
	PendingTotal int64 `json:"pending_total"`
	MaxDepth     int64 `json:"max_depth"`

	Admits        int64 `json:"admits"`
	Harvests      int64 `json:"harvests"`
	HarvestsCrash int64 `json:"harvests_crash"`

	Rounds  int64 `json:"rounds"`
	LeaseNS int64 `json:"lease_ns"`
	IdleNS  int64 `json:"idle_ns"`

	Stages   []StageSnap      `json:"stages"`
	ExecHist []HistBucketSnap `json:"exec_hist"`

	Stage2Campaigns int64 `json:"stage2_campaigns"`
	Stage2Promoted  int64 `json:"stage2_promoted"`
	Stage2Pending   int64 `json:"stage2_pending"`
	Stage2Execs     int64 `json:"stage2_execs"`
	RecoverySites   int64 `json:"recovery_sites"`

	InvariantsMined     int64 `json:"invariants_mined"`
	InvariantChecks     int64 `json:"invariant_checks"`
	InvariantViolations int64 `json:"invariant_violations"`
	InvariantsDropped   int64 `json:"invariants_dropped"`

	StorePuts       int64 `json:"store_puts"`
	StoreDedups     int64 `json:"store_dedups"`
	StoreDeltaPuts  int64 `json:"store_delta_puts"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	RawBytes        int64 `json:"raw_bytes"`
	CompressedBytes int64 `json:"compressed_bytes"`
	ClassHits       int64 `json:"class_hits"`
	ClassMisses     int64 `json:"class_misses"`

	SyncPublished int64 `json:"sync_published"`
	SyncImported  int64 `json:"sync_imported"`
	SyncDedup     int64 `json:"sync_dedup"`
	SyncErrors    int64 `json:"sync_errors"`
	SyncBytesIn   int64 `json:"sync_bytes_in"`
	SyncBytesOut  int64 `json:"sync_bytes_out"`

	SinkErrors int64 `json:"sink_errors"`
}

// Snapshot copies the registry.
func (m *Metrics) Snapshot() Snapshot {
	wall := time.Since(m.start).Seconds()
	s := Snapshot{
		Workload: m.workload,
		Config:   m.config,
		Seed:     m.seed,
		Workers:  m.workers,
		BudgetNS: m.budgetNS,
		WallSecs: wall,

		Execs:        m.execs.Load(),
		Hangs:        m.hangs.Load(),
		Faults:       m.faults.Load(),
		UniqueFaults: m.uniqueFaults.Load(),

		SimNS:       m.simNS.Load(),
		QueueLen:    m.queueLen.Load(),
		PMPaths:     m.pmPaths.Load(),
		BranchCov:   m.branchCov.Load(),
		Images:      m.images.Load(),
		CrashImages: m.crashImages.Load(),

		FavLow:       m.favLow.Load(),
		FavMed:       m.favMed.Load(),
		FavHigh:      m.favHigh.Load(),
		PendingFavs:  m.pendingFavs.Load(),
		PendingTotal: m.pendingTotal.Load(),
		MaxDepth:     m.maxDepth.Load(),

		Admits:        m.admits.Load(),
		Harvests:      m.harvests.Load(),
		HarvestsCrash: m.harvestsCrash.Load(),

		Rounds:  m.rounds.Load(),
		LeaseNS: m.leaseNS.Load(),
		IdleNS:  m.idleNS.Load(),

		Stage2Campaigns: m.stage2Campaigns.Load(),
		Stage2Promoted:  m.stage2Promoted.Load(),
		Stage2Pending:   m.stage2Pending.Load(),
		Stage2Execs:     m.stage2Execs.Load(),
		RecoverySites:   m.recoverySites.Load(),

		InvariantsMined:     m.invMined.Load(),
		InvariantChecks:     m.invChecks.Load(),
		InvariantViolations: m.invViolations.Load(),
		InvariantsDropped:   m.invDropped.Load(),

		StorePuts:       m.storePuts.Load(),
		StoreDedups:     m.storeDedups.Load(),
		StoreDeltaPuts:  m.storeDeltaPuts.Load(),
		CacheHits:       m.cacheHits.Load(),
		CacheMisses:     m.cacheMisses.Load(),
		RawBytes:        m.rawBytes.Load(),
		CompressedBytes: m.compressedBytes.Load(),
		ClassHits:       m.classHits.Load(),
		ClassMisses:     m.classMisses.Load(),

		SyncPublished: m.syncPublished.Load(),
		SyncImported:  m.syncImported.Load(),
		SyncDedup:     m.syncDedup.Load(),
		SyncErrors:    m.syncErrors.Load(),
		SyncBytesIn:   m.syncBytesIn.Load(),
		SyncBytesOut:  m.syncBytesOut.Load(),

		SinkErrors: m.sinkErrors.Load(),
	}
	if wall > 0 {
		s.ExecsPerSec = float64(s.Execs) / wall
	}
	s.Stages = make([]StageSnap, numStages)
	for i := Stage(0); i < numStages; i++ {
		s.Stages[i] = StageSnap{Name: i.String(), NS: m.stageNS[i].Load(), Ops: m.stageOps[i].Load()}
	}
	s.ExecHist = make([]HistBucketSnap, HistBuckets)
	for i := range s.ExecHist {
		s.ExecHist[i] = HistBucketSnap{UpperNS: HistUpperNS(i), Count: m.execHist[i].Load()}
	}
	return s
}

// DedupRate is the fraction of image puts that hit an existing image.
func (s Snapshot) DedupRate() float64 {
	if s.StorePuts == 0 {
		return 0
	}
	return float64(s.StoreDedups) / float64(s.StorePuts)
}

// DeltaRate is the fraction of freshly stored images that were
// delta-encoded.
func (s Snapshot) DeltaRate() float64 {
	fresh := s.StorePuts - s.StoreDedups
	if fresh <= 0 {
		return 0
	}
	return float64(s.StoreDeltaPuts) / float64(fresh)
}

// CompressionRatio is raw/compressed stored bytes (0 when empty).
func (s Snapshot) CompressionRatio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.CompressedBytes)
}
