package pmemobj

import (
	"testing"

	"pmfuzz/internal/pmem"
)

func benchPool(b *testing.B) *Pool {
	b.Helper()
	dev := pmem.NewDevice(4 << 20)
	p, err := Create(dev, "bench", Options{Derandomize: true})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkTxCommitSmall(b *testing.B) {
	p := benchPool(b)
	root, _ := p.Root(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := p.Tx(func() error {
			if err := p.TxAdd(root, 0, 8); err != nil {
				return err
			}
			p.SetU64(root, 0, uint64(i))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxAddRangeTreeLookup(b *testing.B) {
	p := benchPool(b)
	root, _ := p.Root(4096)
	p.Begin()
	if err := p.TxAdd(root, 0, 4096); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fully covered: exercises the redundant-add lookup path (the
		// performance cost Bugs 8–12 pay).
		if err := p.TxAdd(root, uint64(i%4088), 8); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.Abort()
}

func BenchmarkAllocFree(b *testing.B) {
	p := benchPool(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oid, err := p.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Free(oid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenWithRecovery(b *testing.B) {
	// Build a crash image with a pending undo log, then repeatedly open it.
	p := benchPool(b)
	root, _ := p.Root(64)
	dev := p.dev
	func() {
		defer func() { _ = recover() }()
		p.Begin()
		if err := p.TxAdd(root, 0, 8); err != nil {
			b.Fatal(err)
		}
		p.SetU64(root, 0, 42)
		dev.SetInjector(pmem.BarrierFailure{N: dev.Barriers() + 1})
		p.Drain()
	}()
	img := &pmem.Image{Layout: "bench", Data: dev.PersistedSnapshot()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p2, err := Open(pmem.NewDeviceFromImage(img), "bench")
		if err != nil {
			b.Fatal(err)
		}
		if !p2.Recovered() {
			b.Fatal("no recovery ran")
		}
	}
}
