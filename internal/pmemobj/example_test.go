package pmemobj_test

import (
	"fmt"

	"pmfuzz/internal/pmem"
	"pmfuzz/internal/pmemobj"
)

// The canonical transaction pattern: snapshot, mutate, commit. A failure
// anywhere before the commit point rolls the update back on reopen.
func ExamplePool_Tx() {
	dev := pmem.NewDevice(512 * 1024)
	pool, err := pmemobj.Create(dev, "example", pmemobj.Options{Derandomize: true})
	if err != nil {
		panic(err)
	}
	root, err := pool.Root(64)
	if err != nil {
		panic(err)
	}

	err = pool.Tx(func() error {
		if err := pool.TxAdd(root, 0, 8); err != nil {
			return err
		}
		pool.SetU64(root, 0, 42)
		return nil
	})
	if err != nil {
		panic(err)
	}

	// The committed value is durable: reopen from the persisted state.
	img := pool.Close()
	pool2, err := pmemobj.Open(pmem.NewDeviceFromImage(img), "example")
	if err != nil {
		panic(err)
	}
	fmt.Println(pool2.U64(pool2.RootOid(), 0))
	// Output: 42
}

// Crash consistency in one screen: interrupt a transaction with a
// simulated power failure; reopening applies the undo log and restores
// the old value.
func ExampleOpen_recovery() {
	dev := pmem.NewDevice(512 * 1024)
	pool, _ := pmemobj.Create(dev, "example", pmemobj.Options{Derandomize: true})
	root, _ := pool.Root(64)
	pool.SetU64(root, 0, 1)
	pool.Persist(root, 0, 8)

	func() {
		defer func() { recover() }() // the injected failure unwinds here
		pool.Begin()
		if err := pool.TxAdd(root, 0, 8); err != nil {
			panic(err)
		}
		pool.SetU64(root, 0, 2)
		pool.FlushRange(root, 0, 8)
		dev.SetInjector(pmem.BarrierFailure{N: dev.Barriers() + 1})
		pool.Drain() // power failure: in-place update persisted, log valid
	}()

	img := &pmem.Image{Layout: "example", Data: dev.PersistedSnapshot()}
	pool2, _ := pmemobj.Open(pmem.NewDeviceFromImage(img), "example")
	fmt.Println(pool2.Recovered(), pool2.U64(root, 0))
	// Output: true 1
}
