package pmemobj

import (
	"fmt"

	"pmfuzz/internal/instr"
)

// The persistent heap uses 16-byte block headers laid out contiguously
// from heapOff to the end of the pool:
//
//	[size u64 | status u64] [user data ...] [next header ...]
//
// size is the total block size including the header; status is one of
// blockFree or blockAlloc. The free list is volatile and rebuilt by
// scanning the headers at open, so a crash can never corrupt it; header
// updates are ordered (remainder header persisted before the allocated
// header) so a scan sees a consistent heap at every failure point.
const (
	blockHeaderSize = 16
	blockAlign      = 16
	minBlockSize    = blockHeaderSize + 48

	blockFree  = 0
	blockAlloc = 1
)

type freeBlock struct {
	off  uint64
	size uint64
}

type allocator struct {
	p        *Pool
	heapOff  uint64
	heapEnd  uint64
	freeList []freeBlock // sorted by offset
}

func newAllocator(p *Pool) *allocator {
	return &allocator{p: p, heapOff: p.heapOff, heapEnd: uint64(p.dev.Size())}
}

// format writes a single free block covering the whole heap.
func (a *allocator) format(site instr.SiteID) error {
	a.p.dev.PushInternal()
	defer a.p.dev.PopInternal()
	total := a.heapEnd - a.heapOff
	if total < minBlockSize {
		return ErrTooSmall
	}
	a.writeHeader(a.heapOff, total, blockFree, site)
	a.p.dev.Flush(int(a.heapOff), blockHeaderSize, site)
	a.p.dev.Fence(site)
	a.freeList = []freeBlock{{off: a.heapOff, size: total}}
	return nil
}

// rebuild scans the heap headers and reconstructs the volatile free list.
func (a *allocator) rebuild(site instr.SiteID) error {
	a.p.dev.PushInternal()
	defer a.p.dev.PopInternal()
	a.freeList = nil
	off := a.heapOff
	for off < a.heapEnd {
		size, status := a.readHeader(off, site)
		if size < minBlockSize || off+size > a.heapEnd || size%blockAlign != 0 {
			return fmt.Errorf("%w: corrupt heap block at %d (size=%d)", ErrBadPool, off, size)
		}
		if status == blockFree {
			// Free blocks are kept separate rather than coalesced: reusing
			// the exact persistent headers is crash-safe with no repair
			// writes on open, and fragmentation is acceptable for
			// fuzzing-scale heaps.
			a.freeList = append(a.freeList, freeBlock{off: off, size: size})
		} else if status != blockAlloc {
			return fmt.Errorf("%w: bad block status %d at %d", ErrBadPool, status, off)
		}
		off += size
	}
	return nil
}

func (a *allocator) readHeader(off uint64, site instr.SiteID) (size, status uint64) {
	size = a.p.loadU64Raw(int(off), site)
	status = a.p.loadU64Raw(int(off+8), site)
	return size, status
}

func (a *allocator) writeHeader(off, size, status uint64, site instr.SiteID) {
	// Block headers are atomically published commit metadata: a crash
	// mid-update leaves the old durable header, which the scan reads by
	// design.
	a.p.dev.MarkCommitVar(int(off), blockHeaderSize)
	a.p.storeU64Raw(int(off), size, site)
	a.p.storeU64Raw(int(off+8), status, site)
}

func align(n, a uint64) uint64 { return (n + a - 1) / a * a }

// allocate reserves size user bytes. When tx is non-nil the affected
// headers are undo-logged first so an abort (or crash before commit)
// rolls the heap back — the TX_ALLOC protocol.
func (a *allocator) allocate(size uint64, site instr.SiteID, tx *txState) (Oid, error) {
	a.p.dev.PushInternal()
	defer a.p.dev.PopInternal()
	need := align(size+blockHeaderSize, blockAlign)
	if need < minBlockSize {
		need = minBlockSize
	}
	for i, fb := range a.freeList {
		if fb.size < need {
			continue
		}
		if tx != nil {
			// Snapshot the free block's header before mutating it.
			if err := tx.logRange(fb.off, blockHeaderSize, site); err != nil {
				return OidNull, err
			}
		}
		rem := fb.size - need
		if rem >= minBlockSize {
			// Split: persist the remainder's free header first so a crash
			// between the two header writes leaves a consistent heap.
			a.writeHeader(fb.off+need, rem, blockFree, site)
			a.p.dev.Flush(int(fb.off+need), blockHeaderSize, site)
			a.p.dev.Fence(site)
			a.writeHeader(fb.off, need, blockAlloc, site)
			a.p.dev.Flush(int(fb.off), blockHeaderSize, site)
			a.p.dev.Fence(site)
			a.freeList[i] = freeBlock{off: fb.off + need, size: rem}
		} else {
			need = fb.size
			a.writeHeader(fb.off, need, blockAlloc, site)
			a.p.dev.Flush(int(fb.off), blockHeaderSize, site)
			a.p.dev.Fence(site)
			a.freeList = append(a.freeList[:i], a.freeList[i+1:]...)
		}
		return Oid(fb.off + blockHeaderSize), nil
	}
	return OidNull, ErrNoSpace
}

// release returns a block to the free list. When tx is non-nil the header
// is undo-logged so an abort restores the allocation.
func (a *allocator) release(oid Oid, site instr.SiteID, tx *txState) error {
	a.p.dev.PushInternal()
	defer a.p.dev.PopInternal()
	hdr := uint64(oid) - blockHeaderSize
	if hdr < a.heapOff || uint64(oid) >= a.heapEnd {
		return fmt.Errorf("%w: free of non-heap oid %d", ErrBadPool, oid)
	}
	size, status := a.readHeader(hdr, site)
	if status != blockAlloc {
		return fmt.Errorf("%w: double free at %d", ErrBadPool, oid)
	}
	if tx != nil {
		if err := tx.logRange(hdr, blockHeaderSize, site); err != nil {
			return err
		}
	}
	a.writeHeader(hdr, size, blockFree, site)
	a.p.dev.Flush(int(hdr), blockHeaderSize, site)
	a.p.dev.Fence(site)
	a.insertFree(freeBlock{off: hdr, size: size})
	return nil
}

func (a *allocator) insertFree(fb freeBlock) {
	i := 0
	for i < len(a.freeList) && a.freeList[i].off < fb.off {
		i++
	}
	a.freeList = append(a.freeList, freeBlock{})
	copy(a.freeList[i+1:], a.freeList[i:])
	a.freeList[i] = fb
}

// objectSize reports the usable byte count of an allocated object.
func (a *allocator) objectSize(oid Oid) (uint64, error) {
	hdr := uint64(oid) - blockHeaderSize
	if hdr < a.heapOff || uint64(oid) >= a.heapEnd {
		return 0, fmt.Errorf("%w: non-heap oid %d", ErrBadPool, oid)
	}
	size, status := a.readHeader(hdr, 0)
	if status != blockAlloc {
		return 0, fmt.Errorf("%w: oid %d not allocated", ErrBadPool, oid)
	}
	return size - blockHeaderSize, nil
}

// freeBytes reports the total free capacity (for tests and stats).
func (a *allocator) freeBytes() uint64 {
	var n uint64
	for _, fb := range a.freeList {
		n += fb.size
	}
	return n
}
