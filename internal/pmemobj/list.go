package pmemobj

import (
	"fmt"

	"pmfuzz/internal/instr"
	"pmfuzz/internal/trace"
)

// List is the POBJ_LIST analog: an intrusive, transactional, persistent
// doubly linked list. The list head is an ordinary 16-byte persistent
// field pair (first, last) inside any object; elements reserve a
// 16-byte link area (next, prev) at a fixed offset chosen by the caller,
// exactly like PMDK's POBJ_LIST_ENTRY macro.
//
// All mutations run inside the pool's current transaction and snapshot
// the fields they modify, so a failure anywhere rolls the whole splice
// back.
type List struct {
	p *Pool
	// head is the object holding the head fields; headOff is the offset
	// of the (first, last) pair within it.
	head    Oid
	headOff uint64
	// linkOff is the offset of the (next, prev) pair within each element.
	linkOff uint64
}

// NewList attaches to (does not allocate) a list head at head+headOff,
// whose elements link through linkOff. A zeroed head is a valid empty
// list, following the zero-value convention.
func (p *Pool) NewList(head Oid, headOff, linkOff uint64) (*List, error) {
	if head.IsNull() {
		return nil, ErrNullOid
	}
	p.checkOid(head, headOff+16)
	return &List{p: p, head: head, headOff: headOff, linkOff: linkOff}, nil
}

func (l *List) first() Oid { return Oid(l.p.U64(l.head, l.headOff)) }
func (l *List) last() Oid  { return Oid(l.p.U64(l.head, l.headOff+8)) }
func (l *List) next(e Oid) Oid {
	return Oid(l.p.U64(e, l.linkOff))
}
func (l *List) prev(e Oid) Oid {
	return Oid(l.p.U64(e, l.linkOff+8))
}

// First returns the first element (null when empty).
func (l *List) First() Oid { return l.first() }

// Last returns the last element (null when empty).
func (l *List) Last() Oid { return l.last() }

// Next returns the element after e (null at the end).
func (l *List) Next(e Oid) Oid { return l.next(e) }

// Prev returns the element before e (null at the start).
func (l *List) Prev(e Oid) Oid { return l.prev(e) }

// Empty reports whether the list has no elements.
func (l *List) Empty() bool { return l.first().IsNull() }

// logHead snapshots the head pair; logLinks snapshots an element's pair.
func (l *List) logHead() error { return l.p.TxAdd(l.head, l.headOff, 16) }
func (l *List) logLinks(e Oid) error {
	return l.p.TxAdd(e, l.linkOff, 16)
}

// PushFront inserts e at the head of the list (POBJ_LIST_INSERT_HEAD).
// Must run inside a transaction.
func (l *List) PushFront(e Oid) error {
	site := instr.CallerSite(1)
	if l.p.tx.depth == 0 {
		return ErrNoTx
	}
	if e.IsNull() {
		return ErrNullOid
	}
	l.p.dev.LibOp(trace.Store, int(e), 0, site)
	old := l.first()
	if err := l.logLinks(e); err != nil {
		return err
	}
	l.p.SetU64(e, l.linkOff, uint64(old))
	l.p.SetU64(e, l.linkOff+8, 0)
	if err := l.logHead(); err != nil {
		return err
	}
	l.p.SetU64(l.head, l.headOff, uint64(e))
	if old.IsNull() {
		l.p.SetU64(l.head, l.headOff+8, uint64(e))
	} else {
		if err := l.logLinks(old); err != nil {
			return err
		}
		l.p.SetU64(old, l.linkOff+8, uint64(e))
	}
	return nil
}

// PushBack appends e at the tail (POBJ_LIST_INSERT_TAIL).
func (l *List) PushBack(e Oid) error {
	site := instr.CallerSite(1)
	if l.p.tx.depth == 0 {
		return ErrNoTx
	}
	if e.IsNull() {
		return ErrNullOid
	}
	l.p.dev.LibOp(trace.Store, int(e), 0, site)
	old := l.last()
	if err := l.logLinks(e); err != nil {
		return err
	}
	l.p.SetU64(e, l.linkOff, 0)
	l.p.SetU64(e, l.linkOff+8, uint64(old))
	if err := l.logHead(); err != nil {
		return err
	}
	l.p.SetU64(l.head, l.headOff+8, uint64(e))
	if old.IsNull() {
		l.p.SetU64(l.head, l.headOff, uint64(e))
	} else {
		if err := l.logLinks(old); err != nil {
			return err
		}
		l.p.SetU64(old, l.linkOff, uint64(e))
	}
	return nil
}

// Remove unlinks e (POBJ_LIST_REMOVE). Must run inside a transaction.
func (l *List) Remove(e Oid) error {
	site := instr.CallerSite(1)
	if l.p.tx.depth == 0 {
		return ErrNoTx
	}
	if e.IsNull() {
		return ErrNullOid
	}
	l.p.dev.LibOp(trace.Store, int(e), 0, site)
	nx, pv := l.next(e), l.prev(e)
	if err := l.logHead(); err != nil {
		return err
	}
	if pv.IsNull() {
		l.p.SetU64(l.head, l.headOff, uint64(nx))
	} else {
		if err := l.logLinks(pv); err != nil {
			return err
		}
		l.p.SetU64(pv, l.linkOff, uint64(nx))
	}
	if nx.IsNull() {
		l.p.SetU64(l.head, l.headOff+8, uint64(pv))
	} else {
		if err := l.logLinks(nx); err != nil {
			return err
		}
		l.p.SetU64(nx, l.linkOff+8, uint64(pv))
	}
	if err := l.logLinks(e); err != nil {
		return err
	}
	l.p.SetU64(e, l.linkOff, 0)
	l.p.SetU64(e, l.linkOff+8, 0)
	return nil
}

// Len walks the list and returns its length, verifying link symmetry;
// it returns an error on a corrupt list (cycle or broken back-link).
func (l *List) Len() (int, error) {
	n := 0
	var prev Oid
	for e := l.first(); !e.IsNull(); e = l.next(e) {
		if l.prev(e) != prev {
			return 0, fmt.Errorf("pmemobj: list back-link broken at %d", e)
		}
		prev = e
		n++
		if n > 1<<20 {
			return 0, fmt.Errorf("pmemobj: list cycle detected")
		}
	}
	if l.last() != prev {
		return 0, fmt.Errorf("pmemobj: list tail pointer wrong")
	}
	return n, nil
}
