package pmemobj

import (
	"errors"
	"testing"

	"pmfuzz/internal/pmem"
)

func TestRedoLogCommitApplies(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	r, err := p.NewRedoLog(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RecordU64(root, 0, 111); err != nil {
		t.Fatal(err)
	}
	if err := r.RecordU64(root, 8, 222); err != nil {
		t.Fatal(err)
	}
	// Staged updates are invisible until commit.
	if got := p.U64(root, 0); got != 0 {
		t.Fatalf("staged update applied early: %d", got)
	}
	r.Commit()
	if p.U64(root, 0) != 111 || p.U64(root, 8) != 222 {
		t.Fatalf("commit did not apply: %d %d", p.U64(root, 0), p.U64(root, 8))
	}
	// And durably: check the persisted state.
	img := &pmem.Image{Layout: "test", Data: p.Device().PersistedSnapshot()}
	p2, err := Open(pmem.NewDeviceFromImage(img), "test")
	if err != nil {
		t.Fatal(err)
	}
	if p2.U64(root, 0) != 111 {
		t.Fatalf("commit not durable")
	}
}

func TestRedoLogAbortDiscards(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	r, _ := p.NewRedoLog(1024)
	if err := r.RecordU64(root, 0, 9); err != nil {
		t.Fatal(err)
	}
	r.Abort()
	if got := p.U64(root, 0); got != 0 {
		t.Fatalf("aborted batch applied: %d", got)
	}
	// The arena is reusable after abort.
	if err := r.RecordU64(root, 0, 10); err != nil {
		t.Fatal(err)
	}
	r.Commit()
	if got := p.U64(root, 0); got != 10 {
		t.Fatalf("reuse after abort failed: %d", got)
	}
}

func TestRedoLogFull(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(256)
	r, _ := p.NewRedoLog(64)
	if err := r.Record(root, 0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(root, 32, make([]byte, 32)); !errors.Is(err, ErrRedoFull) {
		t.Fatalf("err = %v, want ErrRedoFull", err)
	}
}

// TestRedoLogCrashSweepAtomicity is the redo counterpart of the undo
// crash sweep: at every barrier, recovery yields either none or all of
// the batch — never a prefix.
func TestRedoLogCrashSweepAtomicity(t *testing.T) {
	sawNone, sawAll := false, false
	for barrier := 1; barrier < 40; barrier++ {
		dev := pmem.NewDevice(poolSize)
		p, err := Create(dev, "t", Options{Derandomize: true})
		if err != nil {
			t.Fatal(err)
		}
		root, _ := p.Root(64)
		r, err := p.NewRedoLog(1024)
		if err != nil {
			t.Fatal(err)
		}
		logOid := r.Oid()
		startBarriers := dev.Barriers()

		crashed := func() (crashed bool) {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(pmem.Crash); !ok {
						panic(rec)
					}
					crashed = true
				}
			}()
			dev.SetInjector(pmem.BarrierFailure{N: startBarriers + barrier})
			if err := r.RecordU64(root, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := r.RecordU64(root, 8, 2); err != nil {
				t.Fatal(err)
			}
			if err := r.RecordU64(root, 16, 3); err != nil {
				t.Fatal(err)
			}
			r.Commit()
			return false
		}()

		img := &pmem.Image{Layout: "t", Data: dev.PersistedSnapshot()}
		p2, err := Open(pmem.NewDeviceFromImage(img), "t")
		if err != nil {
			t.Fatalf("barrier %d: reopen: %v", barrier, err)
		}
		if _, err := OpenRedoLog(p2, logOid, 1024); err != nil {
			t.Fatalf("barrier %d: redo open: %v", barrier, err)
		}
		a, b, c := p2.U64(root, 0), p2.U64(root, 8), p2.U64(root, 16)
		switch {
		case a == 0 && b == 0 && c == 0:
			sawNone = true
		case a == 1 && b == 2 && c == 3:
			sawAll = true
		default:
			t.Fatalf("barrier %d: partial batch survived: %d %d %d", barrier, a, b, c)
		}
		if !crashed {
			break
		}
	}
	if !sawNone || !sawAll {
		t.Fatalf("sweep did not cover both outcomes (none=%v all=%v)", sawNone, sawAll)
	}
}

func TestRedoLogRecoveryIdempotent(t *testing.T) {
	// Applying a valid redo log twice must be harmless (redo is
	// idempotent by construction: it writes absolute values).
	p := newPool(t)
	root, _ := p.Root(64)
	r, _ := p.NewRedoLog(1024)
	if err := r.RecordU64(root, 0, 5); err != nil {
		t.Fatal(err)
	}
	r.Commit()
	img := &pmem.Image{Layout: "test", Data: p.Device().PersistedSnapshot()}
	for i := 0; i < 2; i++ {
		p2, err := Open(pmem.NewDeviceFromImage(img), "test")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenRedoLog(p2, r.Oid(), 1024); err != nil {
			t.Fatal(err)
		}
		if p2.U64(root, 0) != 5 {
			t.Fatalf("round %d: value lost", i)
		}
	}
}
