// Package pmemobj is a Go analog of Intel PMDK's libpmemobj (and the
// low-level libpmem API) built on the simulated PM device. It provides
// pools with a named layout and root object, a persistent heap allocator,
// undo-log transactions with PMDK's logged-range-tree semantics, and the
// persist/flush primitives the paper's workloads are written against.
//
// Every entry point records a PM operation with the *caller's* call site
// as its static ID — the analog of the paper's compiler pass that inserts
// a tracking function before each PM-library call site (§4.2).
package pmemobj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"pmfuzz/internal/instr"
	"pmfuzz/internal/pmem"
	"pmfuzz/internal/trace"
)

// Layout constants for the on-image pool format.
const (
	poolMagic = "PMOBJPL1"

	offMagic   = 0x00 // 8 bytes
	offUUID    = 0x08 // 16 bytes
	offLayout  = 0x18 // 32 bytes, zero padded
	offSize    = 0x38 // 8 bytes
	offRoot    = 0x40 // 8 bytes: root object offset (0 = unset)
	offRootLen = 0x48 // 8 bytes
	offHeap    = 0x50 // 8 bytes: heap start
	offLogOff  = 0x58 // 8 bytes: undo-log arena start
	offLogCap  = 0x60 // 8 bytes: undo-log arena capacity

	headerSize = 0x100

	layoutMax = 32

	// DefaultLogCap is the default undo-log arena capacity.
	DefaultLogCap = 64 * 1024
)

// OidNull is the null persistent object handle.
const OidNull = Oid(0)

// Oid is a persistent object handle: the device offset of the object's
// user data. It is the analog of PMDK's PMEMoid (the pool UUID component
// is implicit, as each Device maps exactly one pool).
type Oid uint64

// IsNull reports whether the handle is null.
func (o Oid) IsNull() bool { return o == 0 }

// Common pool errors.
var (
	ErrBadPool      = errors.New("pmemobj: invalid pool")
	ErrWrongLayout  = errors.New("pmemobj: layout mismatch")
	ErrNoSpace      = errors.New("pmemobj: out of persistent memory")
	ErrNullOid      = errors.New("pmemobj: null object dereference")
	ErrNoTx         = errors.New("pmemobj: operation outside transaction")
	ErrLogFull      = errors.New("pmemobj: undo log arena full")
	ErrTooSmall     = errors.New("pmemobj: pool size too small")
	ErrLayoutTooBig = errors.New("pmemobj: layout name too long")
)

// Options configures pool creation and opening.
type Options struct {
	// Derandomize forces the constant UUID of §4.4(1) so identical inputs
	// produce byte-identical images.
	Derandomize bool
	// UUIDSeed seeds UUID generation when Derandomize is false.
	UUIDSeed int64
	// LogCap overrides the undo-log arena capacity (0 = DefaultLogCap).
	LogCap int
}

// constUUID is the fixed UUID written under derandomization.
var constUUID = [16]byte{
	0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03,
	0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
}

// Pool is an open libpmemobj-analog pool over a simulated device.
type Pool struct {
	dev    *pmem.Device
	layout string
	uuid   [16]byte

	heapOff uint64
	logOff  uint64
	logCap  uint64

	alloc *allocator
	tx    *txState

	recovered bool // recovery ran during Open
}

// Create formats a new pool with the given layout on the device and
// returns it. The root object is unset; call Root with a nonzero size to
// allocate it. This is the pmemobj_create analog.
func Create(dev *pmem.Device, layout string, opts Options) (*Pool, error) {
	site := instr.CallerSite(1)
	if len(layout) > layoutMax {
		return nil, ErrLayoutTooBig
	}
	logCap := uint64(opts.LogCap)
	if logCap == 0 {
		logCap = DefaultLogCap
	}
	minSize := uint64(headerSize) + logCap + 4096
	if uint64(dev.Size()) < minSize {
		return nil, fmt.Errorf("%w: need at least %d bytes", ErrTooSmall, minSize)
	}
	p := &Pool{dev: dev, layout: layout}
	if opts.Derandomize {
		p.uuid = constUUID
	} else {
		rng := rand.New(rand.NewSource(opts.UUIDSeed))
		for i := range p.uuid {
			p.uuid[i] = byte(rng.Intn(256))
		}
	}
	p.logOff = headerSize
	p.logCap = logCap
	p.heapOff = headerSize + logCap

	// Annotate the commit records before any store: a failure anywhere
	// inside creation leaves a partial header that Open validates — the
	// detection mechanism, not a cross-failure bug. Same for the
	// undo-log count word.
	dev.MarkCommitVar(0, headerSize)
	dev.MarkCommitVar(int(p.logOff), 8)

	// Header and allocator formatting are library metadata accesses.
	dev.PushInternal()
	defer dev.PopInternal()

	// Write the header fields, then persist them with a single barrier.
	p.storeRaw(offMagic, []byte(poolMagic), site)
	p.storeRaw(offUUID, p.uuid[:], site)
	lay := make([]byte, layoutMax)
	copy(lay, layout)
	p.storeRaw(offLayout, lay, site)
	p.storeU64Raw(offSize, uint64(dev.Size()), site)
	p.storeU64Raw(offRoot, 0, site)
	p.storeU64Raw(offRootLen, 0, site)
	p.storeU64Raw(offHeap, p.heapOff, site)
	p.storeU64Raw(offLogOff, p.logOff, site)
	p.storeU64Raw(offLogCap, p.logCap, site)
	// Zero the undo-log count.
	p.storeU64Raw(int(p.logOff), 0, site)
	dev.Flush(0, headerSize, site)
	dev.Flush(int(p.logOff), 8, site)
	dev.Fence(site)

	p.alloc = newAllocator(p)
	if err := p.alloc.format(site); err != nil {
		return nil, err
	}
	p.tx = newTxState(p)
	dev.LibOp(trace.PoolCreate, 0, headerSize, site)
	return p, nil
}

// Open validates the pool header, runs transaction recovery (applying any
// valid undo log left by a failure), rebuilds the volatile allocator
// state, and returns the pool. This is the pmemobj_open analog; like
// PMDK, transactional state auto-recovers here, while workloads built on
// low-level primitives (Hashmap-Atomic, Memcached) must run their own
// recovery functions afterwards — the distinction Bug 6 hinges on.
func Open(dev *pmem.Device, layout string) (*Pool, error) {
	site := instr.CallerSite(1)
	if dev.Size() < headerSize {
		return nil, fmt.Errorf("%w: device too small", ErrBadPool)
	}
	p := &Pool{dev: dev}
	dev.MarkCommitVar(0, headerSize)
	dev.PushInternal()
	defer dev.PopInternal()
	magic := make([]byte, 8)
	dev.Load(offMagic, magic, site)
	if string(magic) != poolMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadPool, magic)
	}
	dev.Load(offUUID, p.uuid[:], site)
	lay := make([]byte, layoutMax)
	dev.Load(offLayout, lay, site)
	n := 0
	for n < len(lay) && lay[n] != 0 {
		n++
	}
	p.layout = string(lay[:n])
	if layout != "" && p.layout != layout {
		return nil, fmt.Errorf("%w: have %q want %q", ErrWrongLayout, p.layout, layout)
	}
	size := p.loadU64Raw(offSize, site)
	if size != uint64(dev.Size()) {
		return nil, fmt.Errorf("%w: size field %d != device %d", ErrBadPool, size, dev.Size())
	}
	p.heapOff = p.loadU64Raw(offHeap, site)
	p.logOff = p.loadU64Raw(offLogOff, site)
	p.logCap = p.loadU64Raw(offLogCap, site)
	if p.heapOff < headerSize || p.heapOff > size || p.logOff < headerSize ||
		p.logOff+p.logCap > size {
		return nil, fmt.Errorf("%w: corrupt region offsets", ErrBadPool)
	}

	p.tx = newTxState(p)
	if p.tx.recoverLog(site) {
		p.recovered = true
		dev.LibOp(trace.Recovery, int(p.logOff), int(p.logCap), site)
	}
	p.alloc = newAllocator(p)
	if err := p.alloc.rebuild(site); err != nil {
		return nil, err
	}
	dev.MarkCommitVar(int(p.logOff), 8)
	dev.MarkCommitVar(0, headerSize)
	dev.LibOp(trace.PoolOpen, 0, headerSize, site)
	return p, nil
}

// Close flushes outstanding state and closes the underlying device,
// returning the final durable image contents.
func (p *Pool) Close() *pmem.Image {
	site := instr.CallerSite(1)
	p.dev.LibOp(trace.PoolClose, 0, 0, site)
	data := p.dev.Close()
	return &pmem.Image{UUID: p.uuid, Layout: p.layout, Data: data}
}

// Device exposes the underlying simulated device.
func (p *Pool) Device() *pmem.Device { return p.dev }

// Layout returns the pool's layout name.
func (p *Pool) Layout() string { return p.layout }

// UUID returns the pool UUID.
func (p *Pool) UUID() [16]byte { return p.uuid }

// Recovered reports whether Open applied a leftover undo log.
func (p *Pool) Recovered() bool { return p.recovered }

// Root returns the root object handle, allocating it with the given size
// on first use (pmemobj_root analog). The allocation is performed inside
// an internal transaction so a failure cannot leak a half-set root.
func (p *Pool) Root(size uint64) (Oid, error) {
	site := instr.CallerSite(1)
	root := Oid(p.loadU64Raw(offRoot, site))
	if !root.IsNull() {
		return root, nil
	}
	if size == 0 {
		return OidNull, nil
	}
	oid, err := p.alloc.allocate(size, site, nil)
	if err != nil {
		return OidNull, err
	}
	p.dev.PushInternal()
	p.storeU64Raw(offRoot, uint64(oid), site)
	p.storeU64Raw(offRootLen, size, site)
	p.dev.Flush(offRoot, 16, site)
	p.dev.Fence(site)
	p.dev.PopInternal()
	return oid, nil
}

// RootOid returns the current root handle without allocating.
func (p *Pool) RootOid() Oid {
	site := instr.CallerSite(1)
	return Oid(p.loadU64Raw(offRoot, site))
}

// --- raw header helpers (no bounds logic beyond the device's) ---

func (p *Pool) storeRaw(off int, b []byte, site instr.SiteID) {
	p.dev.Store(off, b, site)
}

func (p *Pool) storeU64Raw(off int, v uint64, site instr.SiteID) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.dev.Store(off, b[:], site)
}

func (p *Pool) loadU64Raw(off int, site instr.SiteID) uint64 {
	var b [8]byte
	p.dev.Load(off, b[:], site)
	return binary.LittleEndian.Uint64(b[:])
}

// checkOid panics with ErrNullOid on null handles — the simulation's
// segmentation fault. Fuzzing executors catch the panic and report it the
// way AFL++ reports a crash, which is how the paper's Bugs 1–5 surfaced.
func (p *Pool) checkOid(oid Oid, n uint64) {
	if oid.IsNull() {
		panic(ErrNullOid)
	}
	if uint64(oid)+n > uint64(p.dev.Size()) {
		panic(fmt.Errorf("%w: oid=%d len=%d", pmem.ErrOutOfRange, oid, n))
	}
}

// --- typed persistent accessors (D_RO / D_RW analogs) ---

// U64 reads a uint64 field at oid+off (D_RO analog).
func (p *Pool) U64(oid Oid, off uint64) uint64 {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+8)
	var b [8]byte
	p.dev.Load(int(uint64(oid)+off), b[:], site)
	return binary.LittleEndian.Uint64(b[:])
}

// SetU64 writes a uint64 field at oid+off (D_RW store analog). The store
// is volatile until flushed and fenced (directly or at TX commit).
func (p *Pool) SetU64(oid Oid, off uint64, v uint64) {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+8)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.dev.Store(int(uint64(oid)+off), b[:], site)
}

// Bytes copies n bytes at oid+off out of PM.
func (p *Pool) Bytes(oid Oid, off, n uint64) []byte {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+n)
	out := make([]byte, n)
	p.dev.Load(int(uint64(oid)+off), out, site)
	return out
}

// SetBytes stores b at oid+off.
func (p *Pool) SetBytes(oid Oid, off uint64, b []byte) {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+uint64(len(b)))
	p.dev.Store(int(uint64(oid)+off), b, site)
}

// Persist flushes and fences the range [oid+off, oid+off+n) — the
// pmem_persist analog used by non-transactional code.
func (p *Pool) Persist(oid Oid, off, n uint64) {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+n)
	p.dev.LibOp(trace.PersistCall, int(uint64(oid)+off), int(n), site)
	p.dev.Flush(int(uint64(oid)+off), int(n), site)
	p.dev.Fence(site)
}

// FlushRange flushes without fencing (pmem_flush analog).
func (p *Pool) FlushRange(oid Oid, off, n uint64) {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+n)
	p.dev.Flush(int(uint64(oid)+off), int(n), site)
}

// Drain issues an ordering point (pmem_drain / persist_barrier analog).
func (p *Pool) Drain() {
	site := instr.CallerSite(1)
	p.dev.Fence(site)
}

// Alloc allocates size bytes non-transactionally and returns the handle.
// The allocator metadata update is itself crash-consistent.
func (p *Pool) Alloc(size uint64) (Oid, error) {
	site := instr.CallerSite(1)
	oid, err := p.alloc.allocate(size, site, nil)
	if err != nil {
		return OidNull, err
	}
	p.dev.LibOp(trace.Alloc, int(oid), int(size), site)
	return oid, nil
}

// AllocZeroed allocates and zero-fills persistently.
func (p *Pool) AllocZeroed(size uint64) (Oid, error) {
	site := instr.CallerSite(1)
	oid, err := p.alloc.allocate(size, site, nil)
	if err != nil {
		return OidNull, err
	}
	zero := make([]byte, size)
	p.dev.Store(int(oid), zero, site)
	p.dev.Flush(int(oid), int(size), site)
	p.dev.Fence(site)
	p.dev.LibOp(trace.Alloc, int(oid), int(size), site)
	return oid, nil
}

// Free releases an object non-transactionally.
func (p *Pool) Free(oid Oid) error {
	site := instr.CallerSite(1)
	if oid.IsNull() {
		return nil
	}
	p.dev.LibOp(trace.Free, int(oid), 0, site)
	var tx *txState
	if p.tx.depth > 0 {
		tx = p.tx
	}
	return p.alloc.release(oid, site, tx)
}

// ObjectSize returns the usable size of an allocated object.
func (p *Pool) ObjectSize(oid Oid) (uint64, error) {
	return p.alloc.objectSize(oid)
}
