package pmemobj

import (
	"encoding/binary"
	"fmt"

	"pmfuzz/internal/instr"
	"pmfuzz/internal/pmem"
	"pmfuzz/internal/trace"
)

// Undo log, in a fixed arena inside the pool:
// [count u64] [entry: [target off u64] [len u64] [old data ...]]*. TX_ADD
// appends an entry (persisted with a barrier), then increments the count
// (second barrier) so a half-written entry is never applied; recovery on
// open applies valid entries in reverse and clears the count (Figure 7).
// NOTE: PM site labels capture wrapper-internal frames (Tx → Commit,
// TxZNew → TxAlloc) by file:line — keep every edit in or above the public
// Pool methods line-count-neutral or the pinned coverage goldens diverge.
const logEntryHeader = 16

// txState is the per-pool transaction runtime.
type txState struct {
	p           *Pool
	depth       int
	ranges      *rangeSet
	allocs      []Oid
	frees       []Oid
	logTail     uint64       // volatile append cursor within the arena
	err         error        // sticky error forcing abort at outermost end
	lineScratch []pmem.Range // commit's reused line-flush scratch
	oldScratch  []byte       // appendEntry's reused snapshot scratch
}

func newTxState(p *Pool) *txState {
	return &txState{p: p, ranges: newRangeSet()}
}

// InTx reports whether a transaction is open.
func (p *Pool) InTx() bool { return p.tx.depth > 0 }

// Begin opens a (possibly nested) transaction — the TX_BEGIN analog.
func (p *Pool) Begin() {
	site := instr.CallerSite(1)
	t := p.tx
	t.depth++
	if t.depth == 1 {
		t.ranges.Reset()
		t.allocs = t.allocs[:0]
		t.frees = t.frees[:0]
		t.logTail = 8 // past the count word
		t.err = nil
		p.dev.LibOp(trace.TxBegin, 0, 0, site)
	}
}

// Commit closes the current transaction level; the outermost Commit
// flushes every logged range, fences, applies deferred frees, and
// invalidates the undo log — the TX_END analog.
func (p *Pool) Commit() error {
	site := instr.CallerSite(1)
	t := p.tx
	if t.depth == 0 {
		return ErrNoTx
	}
	t.depth--
	if t.depth > 0 {
		return nil
	}
	if t.err != nil {
		err := t.err
		t.abort(site)
		return err
	}
	t.commit(site)
	return nil
}

// Abort rolls back the whole transaction (all nesting levels) — the
// pmemobj_tx_abort analog.
func (p *Pool) Abort() {
	site := instr.CallerSite(1)
	t := p.tx
	if t.depth == 0 {
		return
	}
	t.depth = 0
	t.abort(site)
}

// Tx runs fn inside a transaction: it commits when fn returns nil and
// aborts when fn returns an error or panics with a program error.
// Injected pmem.Crash panics propagate unmodified — a power failure does
// not execute abort code.
func (p *Pool) Tx(fn func() error) (err error) {
	p.Begin()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.Crash); ok {
				panic(r)
			}
			p.Abort()
			panic(r)
		}
	}()
	if err := fn(); err != nil {
		p.Abort()
		return err
	}
	return p.Commit()
}

// TxAdd snapshots [oid+off, oid+off+n) into the undo log so that an abort
// or crash restores it — the TX_ADD / TX_ADD_FIELD analog. Redundant adds
// (range already covered, including ranges covered by in-transaction
// allocation) are detected through the logged-range tree and recorded as
// TxAddDup trace events: safe, but the performance-bug signal of §5.4.
func (p *Pool) TxAdd(oid Oid, off, n uint64) error {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+n)
	return p.tx.add(uint64(oid)+off, n, site)
}

// TxSetU64 is the TX_SET analog: snapshot the field, then store.
func (p *Pool) TxSetU64(oid Oid, off uint64, v uint64) error {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+8)
	if err := p.tx.add(uint64(oid)+off, 8, site); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.dev.Store(int(uint64(oid)+off), b[:], site)
	return nil
}

// TxSetBytes snapshots and stores a byte range.
func (p *Pool) TxSetBytes(oid Oid, off uint64, b []byte) error {
	site := instr.CallerSite(1)
	p.checkOid(oid, off+uint64(len(b)))
	if err := p.tx.add(uint64(oid)+off, uint64(len(b)), site); err != nil {
		return err
	}
	p.dev.Store(int(uint64(oid)+off), b, site)
	return nil
}

// TxAlloc allocates inside the transaction — the TX_ALLOC analog. The new
// object's whole range becomes covered in the logged-range tree (its
// contents need no undo: an abort frees the object), so a later TX_ADD of
// it is redundant.
func (p *Pool) TxAlloc(size uint64) (Oid, error) {
	site := instr.CallerSite(1)
	t := p.tx
	if t.depth == 0 {
		return OidNull, ErrNoTx
	}
	oid, err := p.alloc.allocate(size, site, t)
	if err != nil {
		t.err = err
		return OidNull, err
	}
	t.allocs = append(t.allocs, oid)
	t.ranges.Add(pmem.Range{Off: int(oid), Len: int(size)})
	p.dev.LibOp(trace.TxAlloc, int(oid), int(size), site)
	return oid, nil
}

// TxZNew allocates zero-initialized inside the transaction (TX_ZNEW
// analog). The zero fill is flushed so the commit fence persists it.
func (p *Pool) TxZNew(size uint64) (Oid, error) {
	site := instr.CallerSite(1)
	oid, err := p.TxAlloc(size)
	if err != nil {
		return OidNull, err
	}
	zero := make([]byte, size)
	p.dev.Store(int(oid), zero, site)
	p.dev.Flush(int(oid), int(size), site)
	return oid, nil
}

// TxFree frees an object inside the transaction (TX_FREE analog); the
// release is deferred to commit so an abort keeps the object.
func (p *Pool) TxFree(oid Oid) error {
	site := instr.CallerSite(1)
	t := p.tx
	if t.depth == 0 {
		return ErrNoTx
	}
	if oid.IsNull() {
		return nil
	}
	t.frees = append(t.frees, oid)
	p.dev.LibOp(trace.TxFree, int(oid), 0, site)
	return nil
}

// add implements TX_ADD against absolute device offsets.
func (t *txState) add(off, n uint64, site instr.SiteID) error {
	if t.depth == 0 {
		return ErrNoTx
	}
	r := pmem.Range{Off: int(off), Len: int(n)}
	fresh := t.ranges.Add(r)
	if len(fresh) == 0 {
		// Fully redundant: PMDK performs the range-tree lookup and skips
		// logging; the wasted work is the performance-bug signal.
		t.p.dev.LibOp(trace.TxAddDup, r.Off, r.Len, site)
		return nil
	}
	t.p.dev.LibOp(trace.TxAdd, r.Off, r.Len, site)
	for _, fr := range fresh {
		if err := t.appendEntry(uint64(fr.Off), uint64(fr.Len), site); err != nil {
			t.err = err
			return err
		}
	}
	return nil
}

// logRange is TxAdd for internal callers (the allocator) that already
// hold absolute offsets and must not emit user-facing TxAdd events.
func (t *txState) logRange(off, n uint64, site instr.SiteID) error {
	if t.depth == 0 {
		return nil // non-transactional caller
	}
	fresh := t.ranges.Add(pmem.Range{Off: int(off), Len: int(n)})
	for _, fr := range fresh {
		if err := t.appendEntry(uint64(fr.Off), uint64(fr.Len), site); err != nil {
			t.err = err
			return err
		}
	}
	return nil
}

// appendEntry persists one undo-log entry: write entry, barrier, bump
// count, barrier.
func (t *txState) appendEntry(off, n uint64, site instr.SiteID) error {
	p := t.p
	p.dev.PushInternal()
	defer p.dev.PopInternal()
	need := logEntryHeader + n
	if t.logTail+need > p.logCap {
		return fmt.Errorf("%w: need %d bytes, %d free", ErrLogFull, need, p.logCap-t.logTail)
	}
	base := p.logOff + t.logTail
	p.storeU64Raw(int(base), off, site)
	p.storeU64Raw(int(base+8), n, site)
	// The device copies on both Load and Store, so the snapshot buffer's
	// lifetime ends here and one per-transaction scratch serves every entry.
	if uint64(cap(t.oldScratch)) < n {
		t.oldScratch = make([]byte, n)
	}
	old := t.oldScratch[:n]
	p.dev.Load(int(off), old, site)
	p.dev.Store(int(base+logEntryHeader), old, site)
	p.dev.Flush(int(base), int(need), site)
	p.dev.Fence(site)

	count := p.loadU64Raw(int(p.logOff), site)
	p.storeU64Raw(int(p.logOff), count+1, site)
	p.dev.Flush(int(p.logOff), 8, site)
	p.dev.Fence(site)

	t.logTail += need
	return nil
}

// commit makes the transaction durable: flush every covered range, fence,
// apply deferred frees, then invalidate the log.
func (t *txState) commit(site instr.SiteID) {
	p := t.p
	// Flush the union of covered ranges at cache-line granularity so
	// adjacent ranges sharing a line are written back exactly once —
	// what a real CLWB loop over the range tree does.
	lineRs := t.lineScratch[:0]
	for _, r := range t.ranges.Ranges() {
		start := r.Off / pmem.LineSize * pmem.LineSize
		end := (r.End() + pmem.LineSize - 1) / pmem.LineSize * pmem.LineSize
		lineRs = append(lineRs, pmem.Range{Off: start, Len: end - start})
	}
	t.lineScratch = lineRs
	for _, r := range pmem.NormalizeRanges(lineRs) {
		p.dev.Flush(r.Off, r.Len, site)
	}
	p.dev.Fence(site)
	// Apply deferred frees. Each freed block's header is undo-logged
	// first: a crash between a free and the log invalidation below must
	// roll the whole transaction back, including re-allocating the block
	// the still-linked data points at. (Without this, replaying the
	// input after such a crash double-frees the block — a bug this
	// repository's own cross-failure checker found.)
	for _, oid := range t.frees {
		hdr := uint64(oid) - blockHeaderSize
		if err := t.appendEntry(hdr, blockHeaderSize, site); err != nil {
			panic(err)
		}
		// Free failures inside commit indicate heap corruption; surface
		// them loudly rather than silently committing.
		if err := p.alloc.release(oid, site, nil); err != nil {
			panic(err)
		}
	}
	t.invalidateLog(site)
	p.dev.LibOp(trace.TxEnd, 0, 0, site)
	t.resetVolatile()
}

// abort rolls every logged range back and invalidates the log. Allocator
// header mutations made inside the transaction (TX_ALLOC splits, in-tx
// frees) were snapshotted before modification, so applying the log already
// reverts the persistent heap; the volatile free list is rebuilt from the
// restored headers afterwards.
func (t *txState) abort(site instr.SiteID) {
	p := t.p
	t.applyLog(site)
	t.invalidateLog(site)
	if len(t.allocs) > 0 || len(t.frees) > 0 || len(t.ranges.Ranges()) > 0 {
		if err := p.alloc.rebuild(site); err != nil {
			// The log restored headers to a pre-transaction state that was
			// valid by construction; a scan failure means the simulation
			// itself is broken.
			panic(err)
		}
	}
	p.dev.LibOp(trace.TxAbort, 0, 0, site)
	t.resetVolatile()
}

// applyLog restores logged old data in reverse order and persists it.
func (t *txState) applyLog(site instr.SiteID) {
	p := t.p
	p.dev.PushInternal()
	defer p.dev.PopInternal()
	count := p.loadU64Raw(int(p.logOff), site)
	type entry struct{ base, off, n uint64 }
	entries := make([]entry, 0, count)
	cur := p.logOff + 8
	for i := uint64(0); i < count; i++ {
		off := p.loadU64Raw(int(cur), site)
		n := p.loadU64Raw(int(cur+8), site)
		if cur+logEntryHeader+n > p.logOff+p.logCap {
			break // truncated garbage; count said otherwise, stop safely
		}
		entries = append(entries, entry{base: cur, off: off, n: n})
		cur += logEntryHeader + n
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		old := make([]byte, e.n)
		p.dev.Load(int(e.base+logEntryHeader), old, site)
		p.dev.Store(int(e.off), old, site)
		p.dev.Flush(int(e.off), int(e.n), site)
	}
	if len(entries) > 0 {
		p.dev.Fence(site)
	}
}

// invalidateLog clears the entry count with a barrier — the commit-style
// valid-bit unset of Figure 7.
func (t *txState) invalidateLog(site instr.SiteID) {
	p := t.p
	p.dev.PushInternal()
	defer p.dev.PopInternal()
	p.storeU64Raw(int(p.logOff), 0, site)
	p.dev.Flush(int(p.logOff), 8, site)
	p.dev.Fence(site)
}

func (t *txState) resetVolatile() {
	t.ranges.Reset()
	t.allocs = t.allocs[:0]
	t.frees = t.frees[:0]
	t.logTail = 8
	t.err = nil
}

// recoverLog applies a leftover undo log during Open. It returns true if
// recovery work was performed.
func (t *txState) recoverLog(site instr.SiteID) bool {
	p := t.p
	count := p.loadU64Raw(int(p.logOff), site)
	if count == 0 {
		return false
	}
	t.applyLog(site)
	t.invalidateLog(site)
	return true
}
