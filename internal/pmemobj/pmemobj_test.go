package pmemobj

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pmfuzz/internal/pmem"
	"pmfuzz/internal/trace"
)

const poolSize = 512 * 1024

func newPool(t *testing.T) *Pool {
	t.Helper()
	dev := pmem.NewDevice(poolSize)
	p, err := Create(dev, "test", Options{Derandomize: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCreateOpenRoundTrip(t *testing.T) {
	p := newPool(t)
	root, err := p.Root(128)
	if err != nil {
		t.Fatal(err)
	}
	p.SetU64(root, 0, 0xdead)
	p.Persist(root, 0, 8)
	img := p.Close()

	dev2 := pmem.NewDeviceFromImage(img)
	p2, err := Open(dev2, "test")
	if err != nil {
		t.Fatal(err)
	}
	root2 := p2.RootOid()
	if root2 != root {
		t.Fatalf("root moved: %d -> %d", root, root2)
	}
	if got := p2.U64(root2, 0); got != 0xdead {
		t.Fatalf("root field = %#x, want 0xdead", got)
	}
}

func TestOpenWrongLayout(t *testing.T) {
	p := newPool(t)
	img := p.Close()
	dev := pmem.NewDeviceFromImage(img)
	if _, err := Open(dev, "other"); !errors.Is(err, ErrWrongLayout) {
		t.Fatalf("err = %v, want ErrWrongLayout", err)
	}
}

func TestOpenGarbage(t *testing.T) {
	dev := pmem.NewDevice(4096)
	if _, err := Open(dev, ""); !errors.Is(err, ErrBadPool) {
		t.Fatalf("err = %v, want ErrBadPool", err)
	}
}

func TestDerandomizedUUIDConstant(t *testing.T) {
	a := newPool(t)
	b := newPool(t)
	if a.UUID() != b.UUID() {
		t.Fatalf("derandomized pools have different UUIDs")
	}
}

func TestRandomUUIDVariesBySeed(t *testing.T) {
	devA := pmem.NewDevice(poolSize)
	devB := pmem.NewDevice(poolSize)
	a, _ := Create(devA, "t", Options{UUIDSeed: 1})
	b, _ := Create(devB, "t", Options{UUIDSeed: 2})
	if a.UUID() == b.UUID() {
		t.Fatalf("different seeds produced identical UUIDs")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	p := newPool(t)
	a, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a.IsNull() || b.IsNull() {
		t.Fatalf("bad handles: %d %d", a, b)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	c, err := p.Alloc(50)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed block not reused: got %d, want %d", c, a)
	}
}

func TestAllocExhaustion(t *testing.T) {
	dev := pmem.NewDevice(headerSize + DefaultLogCap + 8192)
	p, err := Create(dev, "t", Options{Derandomize: true})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		if _, err := p.Alloc(256); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
		if n > 1000 {
			t.Fatalf("allocator never exhausted a tiny heap")
		}
	}
	if n == 0 {
		t.Fatalf("no allocation succeeded")
	}
}

func TestObjectSize(t *testing.T) {
	p := newPool(t)
	oid, _ := p.Alloc(100)
	sz, err := p.ObjectSize(oid)
	if err != nil {
		t.Fatal(err)
	}
	if sz < 100 {
		t.Fatalf("ObjectSize = %d, want >= 100", sz)
	}
}

func TestDoubleFree(t *testing.T) {
	p := newPool(t)
	oid, _ := p.Alloc(64)
	if err := p.Free(oid); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(oid); err == nil {
		t.Fatalf("double free not detected")
	}
}

func TestNullDerefPanics(t *testing.T) {
	p := newPool(t)
	defer func() {
		if r := recover(); r != ErrNullOid {
			t.Fatalf("recover = %v, want ErrNullOid", r)
		}
	}()
	p.U64(OidNull, 0)
}

func TestAllocSurvivesReopen(t *testing.T) {
	p := newPool(t)
	oid, _ := p.Alloc(64)
	p.SetU64(oid, 0, 77)
	p.Persist(oid, 0, 8)
	img := p.Close()

	p2, err := Open(pmem.NewDeviceFromImage(img), "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.U64(oid, 0); got != 77 {
		t.Fatalf("value lost across reopen: %d", got)
	}
	// The rebuilt allocator must not hand the same block out again.
	oid2, _ := p2.Alloc(64)
	if oid2 == oid {
		t.Fatalf("reopened allocator reissued a live block")
	}
}

func TestTxCommitDurable(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	err := p.Tx(func() error {
		if err := p.TxAdd(root, 0, 8); err != nil {
			return err
		}
		p.SetU64(root, 0, 1234)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Commit must have persisted the store: check the *persisted* state.
	snap := p.Device().PersistedSnapshot()
	img := &pmem.Image{Layout: "test", Data: snap}
	p2, err := Open(pmem.NewDeviceFromImage(img), "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.U64(root, 0); got != 1234 {
		t.Fatalf("committed value not durable: %d", got)
	}
	if p2.Recovered() {
		t.Fatalf("clean commit left a live undo log")
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	p.SetU64(root, 0, 10)
	p.Persist(root, 0, 8)
	errBoom := errors.New("boom")
	err := p.Tx(func() error {
		if err := p.TxAdd(root, 0, 8); err != nil {
			return err
		}
		p.SetU64(root, 0, 99)
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Tx error = %v, want boom", err)
	}
	if got := p.U64(root, 0); got != 10 {
		t.Fatalf("abort did not roll back: %d", got)
	}
}

func TestTxCrashBeforeCommitRecovers(t *testing.T) {
	// Crash mid-transaction; on reopen the undo log must restore the old
	// value — the auto-recovery path of pmemobj_open.
	p := newPool(t)
	root, _ := p.Root(64)
	p.SetU64(root, 0, 10)
	p.Persist(root, 0, 8)

	dev := p.dev
	var crashed bool
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.Crash); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		// TxAdd issues 2 barriers; crash right after the log entry becomes
		// valid, then overwrite in place, but never commit.
		p.Begin()
		if err := p.TxAdd(root, 0, 8); err != nil {
			t.Fatal(err)
		}
		p.SetU64(root, 0, 99)
		p.FlushRange(root, 0, 8)
		dev.SetInjector(pmem.BarrierFailure{N: dev.Barriers() + 1})
		p.Drain() // in-place update persisted; log still valid -> crash
		t.Fatalf("unreachable: injector should have fired")
	}()
	if !crashed {
		t.Fatalf("no crash")
	}

	img := &pmem.Image{Layout: "test", Data: dev.PersistedSnapshot()}
	p2, err := Open(pmem.NewDeviceFromImage(img), "test")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Recovered() {
		t.Fatalf("open did not run recovery")
	}
	if got := p2.U64(root, 0); got != 10 {
		t.Fatalf("recovery restored %d, want 10", got)
	}
}

func TestTxCrashAfterCommitKeepsNewValue(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	p.SetU64(root, 0, 10)
	p.Persist(root, 0, 8)
	err := p.Tx(func() error {
		if err := p.TxAdd(root, 0, 8); err != nil {
			return err
		}
		p.SetU64(root, 0, 20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	img := &pmem.Image{Layout: "test", Data: p.dev.PersistedSnapshot()}
	p2, err := Open(pmem.NewDeviceFromImage(img), "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.U64(root, 0); got != 20 {
		t.Fatalf("post-commit crash lost committed value: %d", got)
	}
}

func TestTxAllocAbortFreesObject(t *testing.T) {
	p := newPool(t)
	var oid Oid
	errBoom := errors.New("boom")
	_ = p.Tx(func() error {
		var err error
		oid, err = p.TxAlloc(128)
		if err != nil {
			return err
		}
		return errBoom
	})
	// The block must be free again: a fresh alloc of the same size reuses it.
	oid2, err := p.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if oid2 != oid {
		t.Fatalf("aborted TxAlloc leaked block: got %d, want %d", oid2, oid)
	}
}

func TestTxAllocCrashRecoveryFreesObject(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	dev := p.dev
	func() {
		defer func() { _ = recover() }()
		p.Begin()
		oid, err := p.TxAlloc(128)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.TxAdd(root, 0, 8); err != nil {
			t.Fatal(err)
		}
		p.SetU64(root, 0, uint64(oid))
		dev.SetInjector(pmem.OpFailure{N: dev.Ops() + 1})
		p.U64(root, 0) // any PM op fires the crash
		t.Fatalf("unreachable")
	}()
	img := &pmem.Image{Layout: "test", Data: dev.PersistedSnapshot()}
	p2, err := Open(pmem.NewDeviceFromImage(img), "test")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Recovered() {
		t.Fatalf("no recovery ran")
	}
	if got := p2.RootOid(); got != root {
		t.Fatalf("root handle changed: %d", got)
	}
	if got := p2.U64(root, 0); got != 0 {
		t.Fatalf("uncommitted root pointer survived recovery: %d", got)
	}
}

func TestTxAddDupDetection(t *testing.T) {
	p := newPool(t)
	rec := trace.NewRecorder()
	p.dev.SetSink(rec)
	root, _ := p.Root(64)
	err := p.Tx(func() error {
		if err := p.TxAdd(root, 0, 16); err != nil {
			return err
		}
		if err := p.TxAdd(root, 0, 8); err != nil { // fully covered: dup
			return err
		}
		if err := p.TxAdd(root, 8, 16); err != nil { // partial: not a dup
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.CountKind(trace.TxAddDup); got != 1 {
		t.Fatalf("TxAddDup events = %d, want 1", got)
	}
	if got := rec.CountKind(trace.TxAdd); got != 2 {
		t.Fatalf("TxAdd events = %d, want 2", got)
	}
}

func TestTxAllocCoversObjectRange(t *testing.T) {
	// TX_ADD of a just-TX_ALLOCed object is the paper's Bug 8/9/12
	// pattern: redundant.
	p := newPool(t)
	rec := trace.NewRecorder()
	p.dev.SetSink(rec)
	err := p.Tx(func() error {
		oid, err := p.TxZNew(64)
		if err != nil {
			return err
		}
		return p.TxAdd(oid, 0, 64)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.CountKind(trace.TxAddDup); got != 1 {
		t.Fatalf("TxAddDup events = %d, want 1", got)
	}
}

func TestTxSetU64LogsAndStores(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	p.SetU64(root, 8, 5)
	p.Persist(root, 8, 8)
	errBoom := errors.New("boom")
	_ = p.Tx(func() error {
		if err := p.TxSetU64(root, 8, 6); err != nil {
			return err
		}
		if got := p.U64(root, 8); got != 6 {
			t.Fatalf("TxSetU64 did not store: %d", got)
		}
		return errBoom
	})
	if got := p.U64(root, 8); got != 5 {
		t.Fatalf("TxSetU64 not rolled back: %d", got)
	}
}

func TestTxFreeDeferredToCommit(t *testing.T) {
	p := newPool(t)
	oid, _ := p.Alloc(64)
	errBoom := errors.New("boom")
	_ = p.Tx(func() error {
		if err := p.TxFree(oid); err != nil {
			return err
		}
		return errBoom // abort: free must not happen
	})
	if _, err := p.ObjectSize(oid); err != nil {
		t.Fatalf("aborted TxFree released the object: %v", err)
	}
	err := p.Tx(func() error { return p.TxFree(oid) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ObjectSize(oid); err == nil {
		t.Fatalf("committed TxFree did not release the object")
	}
}

func TestNestedTxCommitsOnce(t *testing.T) {
	p := newPool(t)
	rec := trace.NewRecorder()
	p.dev.SetSink(rec)
	root, _ := p.Root(64)
	err := p.Tx(func() error {
		return p.Tx(func() error {
			return p.TxSetU64(root, 0, 3)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.CountKind(trace.TxBegin); got != 1 {
		t.Fatalf("TxBegin events = %d, want 1 (outermost only)", got)
	}
	if got := rec.CountKind(trace.TxEnd); got != 1 {
		t.Fatalf("TxEnd events = %d, want 1", got)
	}
}

func TestTxOutsideErrors(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	if err := p.TxAdd(root, 0, 8); !errors.Is(err, ErrNoTx) {
		t.Fatalf("TxAdd outside tx: %v", err)
	}
	if _, err := p.TxAlloc(8); !errors.Is(err, ErrNoTx) {
		t.Fatalf("TxAlloc outside tx: %v", err)
	}
	if err := p.Commit(); !errors.Is(err, ErrNoTx) {
		t.Fatalf("Commit outside tx: %v", err)
	}
}

func TestTxLogFull(t *testing.T) {
	dev := pmem.NewDevice(headerSize + 512 + 64*1024)
	p, err := Create(dev, "t", Options{Derandomize: true, LogCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	root, _ := p.Root(4096)
	err = p.Tx(func() error {
		return p.TxAdd(root, 0, 4096) // exceeds the 512-byte arena
	})
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
	// The failed transaction must have been aborted cleanly.
	if p.InTx() {
		t.Fatalf("pool still in tx after log-full abort")
	}
}

func TestCrashPanicPropagatesThroughTx(t *testing.T) {
	p := newPool(t)
	root, _ := p.Root(64)
	p.dev.SetInjector(pmem.OpFailure{N: p.dev.Ops() + 2})
	defer func() {
		r := recover()
		if _, ok := r.(pmem.Crash); !ok {
			t.Fatalf("recover = %v, want pmem.Crash", r)
		}
	}()
	_ = p.Tx(func() error {
		p.SetU64(root, 0, 1) // ops advance; injector fires
		p.SetU64(root, 8, 2)
		return nil
	})
	t.Fatalf("unreachable")
}

func TestBytesAccessors(t *testing.T) {
	p := newPool(t)
	oid, _ := p.Alloc(32)
	p.SetBytes(oid, 4, []byte("hello"))
	if got := string(p.Bytes(oid, 4, 5)); got != "hello" {
		t.Fatalf("Bytes = %q", got)
	}
}

func TestRangeSetProperty(t *testing.T) {
	// Property: after Add(r), Covered(r) is always true, and Add returns
	// ranges whose total length never exceeds r's.
	f := func(offs []uint8, lens []uint8) bool {
		s := newRangeSet()
		n := len(offs)
		if len(lens) < n {
			n = len(lens)
		}
		for i := 0; i < n; i++ {
			r := pmem.Range{Off: int(offs[i]), Len: int(lens[i])%32 + 1}
			fresh := s.Add(r)
			total := 0
			for _, fr := range fresh {
				total += fr.Len
			}
			if total > r.Len {
				return false
			}
			if !s.Covered(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSetAddDisjointAndOverlap(t *testing.T) {
	s := newRangeSet()
	fresh := s.Add(pmem.Range{Off: 10, Len: 10})
	if len(fresh) != 1 || fresh[0] != (pmem.Range{Off: 10, Len: 10}) {
		t.Fatalf("first add fresh = %+v", fresh)
	}
	fresh = s.Add(pmem.Range{Off: 15, Len: 10}) // overlaps tail
	if len(fresh) != 1 || fresh[0] != (pmem.Range{Off: 20, Len: 5}) {
		t.Fatalf("overlap add fresh = %+v", fresh)
	}
	fresh = s.Add(pmem.Range{Off: 0, Len: 30}) // holes at both ends are fresh
	if len(fresh) != 2 || fresh[0] != (pmem.Range{Off: 0, Len: 10}) ||
		fresh[1] != (pmem.Range{Off: 25, Len: 5}) {
		t.Fatalf("cover add fresh = %+v", fresh)
	}
	if fresh = s.Add(pmem.Range{Off: 5, Len: 5}); fresh != nil {
		t.Fatalf("covered add fresh = %+v, want nil", fresh)
	}
}

func TestTxDurabilityUnderCrashSweepProperty(t *testing.T) {
	// Sweep a crash across every barrier of a committed transaction; after
	// recovery the value must be either the old or the new one — never a
	// torn or intermediate state. This is the core crash-consistency
	// invariant of undo logging.
	run := func(failBarrier int) (crashed bool, img *pmem.Image) {
		dev := pmem.NewDevice(poolSize)
		p, err := Create(dev, "t", Options{Derandomize: true})
		if err != nil {
			t.Fatal(err)
		}
		root, _ := p.Root(64)
		p.SetU64(root, 0, 0xAAAA)
		p.Persist(root, 0, 8)
		dev.SetInjector(pmem.BarrierFailure{N: dev.Barriers() + failBarrier})
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.Crash); !ok {
					panic(r)
				}
				crashed = true
				img = &pmem.Image{Layout: "t", Data: dev.PersistedSnapshot()}
			}
		}()
		err = p.Tx(func() error {
			if err := p.TxAdd(root, 0, 8); err != nil {
				return err
			}
			p.SetU64(root, 0, 0xBBBB)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return false, &pmem.Image{Layout: "t", Data: dev.PersistedSnapshot()}
	}
	sawOld, sawNew := false, false
	for fb := 1; fb < 20; fb++ {
		_, img := run(fb)
		p2, err := Open(pmem.NewDeviceFromImage(img), "t")
		if err != nil {
			t.Fatalf("barrier %d: open failed: %v", fb, err)
		}
		root := p2.RootOid()
		got := p2.U64(root, 0)
		switch got {
		case 0xAAAA:
			sawOld = true
		case 0xBBBB:
			sawNew = true
		default:
			t.Fatalf("barrier %d: inconsistent value %#x", fb, got)
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("crash sweep did not exercise both outcomes (old=%v new=%v)", sawOld, sawNew)
	}
}

// TestAllocatorCrashSweepProperty drives random alloc/free sequences and
// crashes at arbitrary PM operations; the heap headers must scan clean
// on every reopen (the allocator's ordered header-update protocol).
func TestAllocatorCrashSweepProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("allocator crash sweep is slow")
	}
	for seed := int64(1); seed <= 3; seed++ {
		for op := 5; op < 3000; op += 17 {
			dev := pmem.NewDevice(poolSize)
			p, err := Create(dev, "t", Options{Derandomize: true})
			if err != nil {
				t.Fatal(err)
			}
			crashed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(pmem.Crash); !ok {
							panic(r)
						}
						crashed = true
					}
				}()
				dev.SetInjector(pmem.OpFailure{N: dev.Ops() + op})
				rng := newSeededRNG(seed)
				var live []Oid
				for i := 0; i < 60; i++ {
					if rng.Intn(3) > 0 || len(live) == 0 {
						oid, err := p.Alloc(uint64(16 + rng.Intn(200)))
						if err != nil {
							break
						}
						live = append(live, oid)
					} else {
						idx := rng.Intn(len(live))
						if err := p.Free(live[idx]); err != nil {
							t.Fatal(err)
						}
						live = append(live[:idx], live[idx+1:]...)
					}
				}
			}()
			if !crashed {
				break // op index beyond the sequence; later ops won't crash either
			}
			img := &pmem.Image{Layout: "t", Data: dev.PersistedSnapshot()}
			if _, err := Open(pmem.NewDeviceFromImage(img), "t"); err != nil {
				t.Fatalf("seed %d op %d: heap corrupt after crash: %v", seed, op, err)
			}
		}
	}
}

func newSeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
