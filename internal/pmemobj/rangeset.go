package pmemobj

import "pmfuzz/internal/pmem"

// rangeSet is the logged-range tree of PMDK's transaction runtime (§6 of
// the paper, "Performance Bug Trade-offs"): before creating an undo-log
// entry the library looks the range up, so re-adding an already-logged
// range is *safe* but wastes a lookup — the signature of the paper's
// performance bugs 8–12. Add returns the sub-ranges that were not yet
// covered; an empty result means the TX_ADD was fully redundant.
type rangeSet struct {
	rs []pmem.Range // sorted by Off, non-overlapping
	// scratch backs Add's result slice. Every caller consumes the fresh
	// sub-ranges before touching the set again, so one buffer per set
	// avoids an allocation on each non-redundant TX_ADD.
	scratch []pmem.Range
}

func newRangeSet() *rangeSet { return &rangeSet{} }

// Covered reports whether r is fully contained in the set.
func (s *rangeSet) Covered(r pmem.Range) bool {
	if r.Len <= 0 {
		return true
	}
	for _, e := range s.rs {
		if e.Off > r.Off {
			return false
		}
		if e.Contains(r) {
			return true
		}
		// Partial cover from the left: advance r past e.
		if e.Overlaps(r) && e.Off <= r.Off {
			cut := e.End() - r.Off
			r.Off += cut
			r.Len -= cut
			if r.Len <= 0 {
				return true
			}
		}
	}
	return false
}

// Add inserts r and returns the newly covered (previously absent)
// sub-ranges in ascending order. The returned slice is only valid until
// the next Add on this set.
func (s *rangeSet) Add(r pmem.Range) []pmem.Range {
	if r.Len <= 0 {
		return nil
	}
	fresh := s.scratch[:0]
	cur := r.Off
	end := r.End()
	for _, e := range s.rs {
		if e.End() <= cur {
			continue
		}
		if e.Off >= end {
			break
		}
		if e.Off > cur {
			fresh = append(fresh, pmem.Range{Off: cur, Len: e.Off - cur})
		}
		if e.End() > cur {
			cur = e.End()
		}
		if cur >= end {
			break
		}
	}
	if cur < end {
		fresh = append(fresh, pmem.Range{Off: cur, Len: end - cur})
	}
	s.rs = pmem.NormalizeRanges(append(s.rs, r))
	s.scratch = fresh
	if len(fresh) == 0 {
		return nil // fully redundant add, keep the documented nil result
	}
	return fresh
}

// Reset empties the set for the next transaction.
func (s *rangeSet) Reset() { s.rs = s.rs[:0] }

// Ranges returns the covered ranges (sorted, merged).
func (s *rangeSet) Ranges() []pmem.Range { return s.rs }
