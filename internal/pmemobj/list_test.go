package pmemobj

import (
	"errors"
	"testing"

	"pmfuzz/internal/pmem"
)

// listFixture allocates a head object and n elements; elements store
// their value at offset 0 and links at offset 8.
func listFixture(t *testing.T, n int) (*Pool, *List, []Oid) {
	t.Helper()
	p := newPool(t)
	head, err := p.Root(32)
	if err != nil {
		t.Fatal(err)
	}
	l, err := p.NewList(head, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	var elems []Oid
	for i := 0; i < n; i++ {
		oid, err := p.AllocZeroed(24)
		if err != nil {
			t.Fatal(err)
		}
		p.SetU64(oid, 0, uint64(i+1))
		p.Persist(oid, 0, 8)
		elems = append(elems, oid)
	}
	return p, l, elems
}

func values(t *testing.T, p *Pool, l *List) []uint64 {
	t.Helper()
	var out []uint64
	for e := l.First(); !e.IsNull(); e = l.Next(e) {
		out = append(out, p.U64(e, 0))
	}
	if _, err := l.Len(); err != nil {
		t.Fatal(err)
	}
	return out
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestListPushFrontBack(t *testing.T) {
	p, l, elems := listFixture(t, 4)
	err := p.Tx(func() error {
		if err := l.PushBack(elems[0]); err != nil { // 1
			return err
		}
		if err := l.PushBack(elems[1]); err != nil { // 1 2
			return err
		}
		if err := l.PushFront(elems[2]); err != nil { // 3 1 2
			return err
		}
		return l.PushBack(elems[3]) // 3 1 2 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := values(t, p, l); !eq(got, []uint64{3, 1, 2, 4}) {
		t.Fatalf("values = %v", got)
	}
	// Backward traversal must agree.
	var back []uint64
	for e := l.Last(); !e.IsNull(); e = l.Prev(e) {
		back = append(back, p.U64(e, 0))
	}
	if !eq(back, []uint64{4, 2, 1, 3}) {
		t.Fatalf("backward = %v", back)
	}
}

func TestListRemove(t *testing.T) {
	p, l, elems := listFixture(t, 3)
	err := p.Tx(func() error {
		for _, e := range elems {
			if err := l.PushBack(e); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Remove middle, then head, then tail.
	for i, victim := range []int{1, 0, 2} {
		if err := p.Tx(func() error { return l.Remove(elems[victim]) }); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
		if _, err := l.Len(); err != nil {
			t.Fatalf("after remove %d: %v", i, err)
		}
	}
	if !l.Empty() {
		t.Fatalf("list not empty")
	}
}

func TestListOutsideTxRejected(t *testing.T) {
	_, l, elems := listFixture(t, 1)
	if err := l.PushBack(elems[0]); !errors.Is(err, ErrNoTx) {
		t.Fatalf("err = %v, want ErrNoTx", err)
	}
	if err := l.Remove(elems[0]); !errors.Is(err, ErrNoTx) {
		t.Fatalf("err = %v, want ErrNoTx", err)
	}
}

func TestListAbortRollsBack(t *testing.T) {
	p, l, elems := listFixture(t, 2)
	if err := p.Tx(func() error { return l.PushBack(elems[0]) }); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_ = p.Tx(func() error {
		if err := l.PushBack(elems[1]); err != nil {
			return err
		}
		return boom
	})
	if got := values(t, p, l); !eq(got, []uint64{1}) {
		t.Fatalf("abort did not restore list: %v", got)
	}
}

// TestListCrashSweep: a failure at any ordering point during a splice
// leaves, after recovery, either the old or the new list — never a
// broken one.
func TestListCrashSweep(t *testing.T) {
	for barrier := 1; barrier < 60; barrier++ {
		p, l, elems := listFixture(t, 3)
		dev := p.Device()
		if err := p.Tx(func() error { return l.PushBack(elems[0]) }); err != nil {
			t.Fatal(err)
		}
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.Crash); !ok {
						panic(r)
					}
					c = true
				}
			}()
			dev.SetInjector(pmem.BarrierFailure{N: dev.Barriers() + barrier})
			err := p.Tx(func() error {
				if err := l.PushFront(elems[1]); err != nil {
					return err
				}
				return l.Remove(elems[0])
			})
			if err != nil {
				t.Fatal(err)
			}
			return false
		}()
		img := &pmem.Image{Layout: "test", Data: dev.PersistedSnapshot()}
		p2, err := Open(pmem.NewDeviceFromImage(img), "test")
		if err != nil {
			t.Fatalf("barrier %d: %v", barrier, err)
		}
		l2, err := p2.NewList(p2.RootOid(), 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		n, err := l2.Len()
		if err != nil {
			t.Fatalf("barrier %d: corrupt list after recovery: %v", barrier, err)
		}
		if n != 1 {
			t.Fatalf("barrier %d: list length %d, want 1 (old or new state)", barrier, n)
		}
		if !crashed {
			break
		}
	}
}
