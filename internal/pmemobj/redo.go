package pmemobj

import (
	"encoding/binary"
	"fmt"

	"pmfuzz/internal/instr"
	"pmfuzz/internal/trace"
)

// RedoLog is the write-ahead (redo) counterpart of the pool's undo-log
// transactions — the other classic crash-consistency mechanism §2.1
// lists. Updates are first staged into a persistent log; Commit persists
// the log, sets a valid flag (the Figure 7 commit variable), applies the
// updates in place, and clears the flag. Recovery re-applies a valid log
// (redo), making Commit atomic: a crash before the valid flag loses the
// whole batch, a crash after it replays the batch.
//
// On-pool layout of a redo arena (allocated like any object):
//
//	valid u64 | count u64 | entries: [off u64 | len u64 | data ...]*
type RedoLog struct {
	p    *Pool
	oid  Oid
	cap  uint64
	tail uint64 // volatile append cursor past the 16-byte header

	// staged mirrors the pending updates so Apply can run from memory;
	// recovery reads them back from the arena instead.
	staged []redoEntry
}

type redoEntry struct {
	off  uint64
	data []byte
}

const redoHeader = 16

// ErrRedoFull reports an exhausted redo arena.
var ErrRedoFull = fmt.Errorf("pmemobj: redo log arena full")

// NewRedoLog allocates a redo arena of the given capacity in the pool.
func (p *Pool) NewRedoLog(capacity uint64) (*RedoLog, error) {
	site := instr.CallerSite(1)
	oid, err := p.alloc.allocate(capacity+redoHeader, site, nil)
	if err != nil {
		return nil, err
	}
	p.dev.PushInternal()
	p.storeU64Raw(int(oid), 0, site)   // valid = 0
	p.storeU64Raw(int(oid)+8, 0, site) // count = 0
	p.dev.Flush(int(oid), redoHeader, site)
	p.dev.Fence(site)
	p.dev.PopInternal()
	p.dev.MarkCommitVar(int(oid), redoHeader) // valid + count commit words
	return &RedoLog{p: p, oid: oid, cap: capacity, tail: redoHeader}, nil
}

// OpenRedoLog attaches to an existing redo arena (after reopening a
// pool) and re-applies it if a crash left it valid.
func OpenRedoLog(p *Pool, oid Oid, capacity uint64) (*RedoLog, error) {
	site := instr.CallerSite(1)
	r := &RedoLog{p: p, oid: oid, cap: capacity, tail: redoHeader}
	p.dev.MarkCommitVar(int(oid), redoHeader)
	if p.loadU64Raw(int(oid), site) == 1 {
		// Valid log: the batch committed but may not have been applied.
		r.recover(site)
		p.dev.LibOp(trace.Recovery, int(oid), int(capacity), site)
	}
	return r, nil
}

// Oid returns the arena handle (store it somewhere persistent to find
// the log again after a reopen).
func (r *RedoLog) Oid() Oid { return r.oid }

// Record stages an update of data at absolute object offset oid+off. The
// target bytes are NOT modified until Commit.
func (r *RedoLog) Record(oid Oid, off uint64, data []byte) error {
	site := instr.CallerSite(1)
	r.p.checkOid(oid, off+uint64(len(data)))
	need := uint64(16 + len(data))
	if r.tail+need > r.cap+redoHeader {
		return fmt.Errorf("%w: need %d bytes", ErrRedoFull, need)
	}
	base := uint64(r.oid) + r.tail
	r.p.dev.PushInternal()
	r.p.storeU64Raw(int(base), uint64(oid)+off, site)
	r.p.storeU64Raw(int(base)+8, uint64(len(data)), site)
	r.p.dev.Store(int(base)+16, data, site)
	r.p.dev.Flush(int(base), int(need), site)
	r.p.dev.PopInternal()
	r.tail += need
	r.staged = append(r.staged, redoEntry{
		off:  uint64(oid) + off,
		data: append([]byte(nil), data...),
	})
	count := uint64(len(r.staged))
	r.p.dev.PushInternal()
	r.p.storeU64Raw(int(r.oid)+8, count, site)
	r.p.dev.Flush(int(r.oid)+8, 8, site)
	r.p.dev.PopInternal()
	return nil
}

// Commit makes the staged batch durable and applies it:
// persist entries+count, fence, valid=1, fence, apply in place, flush,
// fence, valid=0, fence. Either every update survives a crash or none.
func (r *RedoLog) Commit() {
	site := instr.CallerSite(1)
	p := r.p
	if len(r.staged) == 0 {
		return
	}
	p.dev.PushInternal()
	p.dev.Fence(site) // entries + count queued above become durable
	p.storeU64Raw(int(r.oid), 1, site)
	p.dev.Flush(int(r.oid), 8, site)
	p.dev.Fence(site) // commit point
	p.dev.PopInternal()
	for _, e := range r.staged {
		p.dev.Store(int(e.off), e.data, site)
		p.dev.Flush(int(e.off), len(e.data), site)
	}
	p.dev.Fence(site)
	p.dev.PushInternal()
	p.storeU64Raw(int(r.oid), 0, site)
	p.storeU64Raw(int(r.oid)+8, 0, site)
	p.dev.Flush(int(r.oid), redoHeader, site)
	p.dev.Fence(site)
	p.dev.PopInternal()
	r.reset()
}

// Abort discards the staged batch (nothing was applied).
func (r *RedoLog) Abort() {
	site := instr.CallerSite(1)
	p := r.p
	p.dev.PushInternal()
	p.storeU64Raw(int(r.oid)+8, 0, site)
	p.dev.Flush(int(r.oid)+8, 8, site)
	p.dev.Fence(site)
	p.dev.PopInternal()
	r.reset()
}

func (r *RedoLog) reset() {
	r.tail = redoHeader
	r.staged = r.staged[:0]
}

// recover re-applies a valid log from its persistent entries.
func (r *RedoLog) recover(site instr.SiteID) {
	p := r.p
	p.dev.PushInternal()
	defer p.dev.PopInternal()
	count := p.loadU64Raw(int(r.oid)+8, site)
	cur := uint64(r.oid) + redoHeader
	end := uint64(r.oid) + redoHeader + r.cap
	for i := uint64(0); i < count; i++ {
		if cur+16 > end {
			break
		}
		off := p.loadU64Raw(int(cur), site)
		n := p.loadU64Raw(int(cur)+8, site)
		if cur+16+n > end || off+n > uint64(p.dev.Size()) {
			break
		}
		data := make([]byte, n)
		p.dev.Load(int(cur)+16, data, site)
		p.dev.Store(int(off), data, site)
		p.dev.Flush(int(off), int(n), site)
		cur += 16 + n
	}
	p.dev.Fence(site)
	p.storeU64Raw(int(r.oid), 0, site)
	p.storeU64Raw(int(r.oid)+8, 0, site)
	p.dev.Flush(int(r.oid), redoHeader, site)
	p.dev.Fence(site)
}

// RecordU64 stages a single 8-byte update.
func (r *RedoLog) RecordU64(oid Oid, off uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return r.Record(oid, off, b[:])
}
