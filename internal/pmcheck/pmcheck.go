// Package pmcheck is the Pmemcheck / Persistence Inspector analog: a
// rule-based checker over a PM-operation trace. It detects the
// crash-consistency patterns Pmemcheck reports (stores that never become
// persistent, stores inside a transaction to un-snapshotted ranges) and
// the performance patterns the paper's Bugs 7–12 exhibit (redundant
// flushes and redundant undo-log snapshots).
//
// Like the original tool, it is attached to the test cases a fuzzer
// generates (step ⑤ of the paper's Figure 9): execution produces a trace,
// the checker replays the trace against its rules.
package pmcheck

import (
	"fmt"

	"pmfuzz/internal/pmem"
	"pmfuzz/internal/trace"
)

// Class separates correctness findings from performance findings.
type Class int

// Report classes.
const (
	// CrashConsistency marks a bug that can corrupt durable state.
	CrashConsistency Class = iota
	// Performance marks redundant persistence work.
	Performance
)

// String names the class.
func (c Class) String() string {
	if c == CrashConsistency {
		return "crash-consistency"
	}
	return "performance"
}

// Rule identifies which checker rule fired.
type Rule int

// Checker rules.
const (
	// RuleUnflushedStore: a store's data was never covered by a flush, so
	// it may never persist ("store not made persistent").
	RuleUnflushedStore Rule = iota
	// RuleUnfencedFlush: data was flushed but no ordering point followed
	// before the end of execution.
	RuleUnfencedFlush
	// RuleStoreInTxNotLogged: a store inside a transaction modified a
	// range that was never snapshotted (TX_ADD) nor allocated in the
	// transaction — a failure rolls back everything except this write.
	RuleStoreInTxNotLogged
	// RuleRedundantTxAdd: a snapshot of an already-snapshotted (or
	// transactionally allocated) range — wasted range-tree work.
	RuleRedundantTxAdd
	// RuleRedundantFlush: a flush covering no dirty data.
	RuleRedundantFlush
)

var ruleNames = map[Rule]string{
	RuleUnflushedStore:     "store-not-persisted",
	RuleUnfencedFlush:      "flush-not-fenced",
	RuleStoreInTxNotLogged: "store-in-tx-not-logged",
	RuleRedundantTxAdd:     "redundant-tx-add",
	RuleRedundantFlush:     "redundant-flush",
}

// String names the rule.
func (r Rule) String() string {
	if s, ok := ruleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("rule(%d)", int(r))
}

// Class returns the rule's report class.
func (r Rule) Class() Class {
	if r == RuleRedundantTxAdd || r == RuleRedundantFlush {
		return Performance
	}
	return CrashConsistency
}

// Report is one checker finding.
type Report struct {
	Rule  Rule
	Event trace.Event
	Desc  string
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("[%s/%s] %s (%s)", r.Rule.Class(), r.Rule, r.Desc, r.Event)
}

// lineState tracks one cache line's persistence status.
type lineState struct {
	dirtySince int // Seq of the oldest un-flushed store, 0 = clean
	queued     int // Seq of the flush that queued it, 0 = not queued
	storeEvt   trace.Event
	flushEvt   trace.Event
}

// Check runs all rules over a trace and returns the findings.
func Check(events []trace.Event) []Report {
	var reports []Report
	lines := map[int]*lineState{}
	line := func(i int) *lineState {
		if s, ok := lines[i]; ok {
			return s
		}
		s := &lineState{}
		lines[i] = s
		return s
	}
	lineRange := func(off, n int) (int, int) {
		if n <= 0 {
			n = 1
		}
		return off / pmem.LineSize, (off + n - 1) / pmem.LineSize
	}

	// Transaction tracking for RuleStoreInTxNotLogged / RuleRedundantTxAdd.
	inTx := false
	var logged []pmem.Range

	covered := func(r pmem.Range) bool {
		for _, lr := range logged {
			if lr.Contains(r) {
				return true
			}
			// Handle coverage split across several logged ranges.
			if lr.Overlaps(r) && lr.Off <= r.Off {
				cut := lr.End() - r.Off
				r.Off += cut
				r.Len -= cut
				if r.Len <= 0 {
					return true
				}
			}
		}
		return r.Len <= 0
	}

	for _, e := range events {
		switch e.Kind {
		case trace.Store, trace.NTStore:
			if inTx && !e.Internal {
				r := pmem.Range{Off: e.Off, Len: e.Len}
				if !covered(r) {
					reports = append(reports, Report{
						Rule:  RuleStoreInTxNotLogged,
						Event: e,
						Desc: fmt.Sprintf("store to [%d,+%d) inside a transaction without a backup",
							e.Off, e.Len),
					})
				}
			}
			first, last := lineRange(e.Off, e.Len)
			for l := first; l <= last; l++ {
				s := line(l)
				if e.Kind == trace.NTStore {
					// Non-temporal stores self-queue.
					s.dirtySince = 0
					s.queued = e.Seq
					s.flushEvt = e
				} else {
					if s.dirtySince == 0 {
						s.dirtySince = e.Seq
						s.storeEvt = e
					}
					s.queued = 0
				}
			}

		case trace.Flush:
			first, last := lineRange(e.Off, e.Len)
			anyDirty := false
			for l := first; l <= last; l++ {
				s := line(l)
				if s.dirtySince != 0 {
					anyDirty = true
					s.dirtySince = 0
					s.queued = e.Seq
					s.flushEvt = e
				}
			}
			if !anyDirty && !e.Internal {
				reports = append(reports, Report{
					Rule:  RuleRedundantFlush,
					Event: e,
					Desc:  fmt.Sprintf("flush of [%d,+%d) covers no dirty data", e.Off, e.Len),
				})
			}

		case trace.Fence:
			for _, s := range lines {
				if s.queued != 0 {
					s.queued = 0
				}
			}

		case trace.TxBegin:
			inTx = true
			logged = logged[:0]

		case trace.TxEnd, trace.TxAbort:
			inTx = false
			logged = logged[:0]

		case trace.TxAdd, trace.TxAlloc:
			logged = pmem.NormalizeRanges(append(logged, pmem.Range{Off: e.Off, Len: e.Len}))

		case trace.TxAddDup:
			reports = append(reports, Report{
				Rule:  RuleRedundantTxAdd,
				Event: e,
				Desc: fmt.Sprintf("TX_ADD of already-snapshotted range [%d,+%d)",
					e.Off, e.Len),
			})
			logged = pmem.NormalizeRanges(append(logged, pmem.Range{Off: e.Off, Len: e.Len}))
		}
	}

	// End of execution: anything still dirty was never flushed; anything
	// queued was never fenced. (A clean program persists everything it
	// wrote before exiting.)
	for _, s := range lines {
		if s.dirtySince != 0 && !s.storeEvt.Internal {
			reports = append(reports, Report{
				Rule:  RuleUnflushedStore,
				Event: s.storeEvt,
				Desc: fmt.Sprintf("store at [%d,+%d) never flushed before exit",
					s.storeEvt.Off, s.storeEvt.Len),
			})
		} else if s.queued != 0 && !s.flushEvt.Internal {
			reports = append(reports, Report{
				Rule:  RuleUnfencedFlush,
				Event: s.flushEvt,
				Desc: fmt.Sprintf("flush at [%d,+%d) never followed by a fence",
					s.flushEvt.Off, s.flushEvt.Len),
			})
		}
	}
	return reports
}

// Summary buckets reports by rule.
func Summary(reports []Report) map[Rule]int {
	out := map[Rule]int{}
	for _, r := range reports {
		out[r.Rule]++
	}
	return out
}

// HasClass reports whether any finding belongs to the class.
func HasClass(reports []Report, c Class) bool {
	for _, r := range reports {
		if r.Rule.Class() == c {
			return true
		}
	}
	return false
}
