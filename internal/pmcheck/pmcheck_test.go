package pmcheck

import (
	"fmt"
	"testing"

	"pmfuzz/internal/executor"
	"pmfuzz/internal/pmem"
	"pmfuzz/internal/trace"
	"pmfuzz/internal/workloads"
	"pmfuzz/internal/workloads/bugs"
)

func run(t *testing.T, workload string, input []byte, bg *bugs.Set) *executor.Result {
	t.Helper()
	res := executor.Run(executor.TestCase{
		Workload: workload,
		Input:    input,
		Bugs:     bg,
		Seed:     1,
	}, executor.Options{RecordTrace: true})
	if res.Panicked {
		t.Fatalf("%s panicked: %v", workload, res.PanicVal)
	}
	return res
}

func heavyInput(workload string) []byte {
	switch workload {
	case "redis":
		return []byte("SET 1 1\nSET 9 2\nSET 17 3\nSET 2 4\nDEL 9\nSET 25 5\nDEL 1\nGET 17\nCHECK\n")
	case "memcached":
		return []byte("set 1 1\nset 2 2\nset 3 3\ndel 2\nset 4 4\ndel 1\nget 3\nc\n")
	default:
		// Enough inserts/removes to trigger splits, rotations, rebuilds.
		var in []byte
		for i := 1; i <= 24; i++ {
			in = append(in, []byte(fmt.Sprintf("i %d %d\n", i*3%29, i))...)
		}
		for i := 1; i <= 10; i++ {
			in = append(in, []byte(fmt.Sprintf("r %d\n", i*9%29))...)
		}
		in = append(in, []byte("c\n")...)
		return in
	}
}

// TestNoFindingsOnFixedWorkloads is the checker's false-positive gate:
// every workload, run correctly, must produce a clean bill of health.
func TestNoFindingsOnFixedWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := run(t, name, heavyInput(name), nil)
			if res.Err != nil {
				t.Fatalf("workload error: %v", res.Err)
			}
			reports := Check(res.Trace.Events())
			for _, r := range reports {
				t.Errorf("false positive: %s", r)
			}
		})
	}
}

// TestDetectsSkippedBackup checks the RuleStoreInTxNotLogged rule against
// a representative SkipTxAdd injection in each transactional workload.
func TestDetectsSkippedBackup(t *testing.T) {
	cases := []struct {
		workload string
		synID    int
	}{
		{"btree", 3},      // insert leaf node
		{"rbtree", 2},     // insert_bst parent link
		{"rtree", 3},      // insert child link on existing node
		{"skiplist", 2},   // insert link level 0
		{"hashmap-tx", 4}, // insert bucket head
		{"redis", 5},      // tail append (Example 2)
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/syn%d", c.workload, c.synID), func(t *testing.T) {
			res := run(t, c.workload, heavyInput(c.workload), bugs.NewSet().EnableSyn(c.synID))
			reports := Check(res.Trace.Events())
			found := false
			for _, r := range reports {
				if r.Rule == RuleStoreInTxNotLogged {
					found = true
				}
			}
			if !found {
				t.Fatalf("skipped backup not detected; reports: %v", reports)
			}
		})
	}
}

// TestDetectsWrongLogRange: logging the wrong field leaves the actual
// store unlogged.
func TestDetectsWrongLogRange(t *testing.T) {
	cases := []struct {
		workload string
		synID    int
	}{
		{"btree", 4},
		{"skiplist", 4},
		{"hashmap-tx", 5},
		{"rtree", 4},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/syn%d", c.workload, c.synID), func(t *testing.T) {
			res := run(t, c.workload, heavyInput(c.workload), bugs.NewSet().EnableSyn(c.synID))
			reports := Check(res.Trace.Events())
			if !HasClass(reports, CrashConsistency) {
				t.Fatalf("wrong-range logging not detected")
			}
		})
	}
}

// TestDetectsSkippedFlush: the non-transactional stamp persist, when
// skipped, leaves a store unflushed at exit.
func TestDetectsSkippedFlush(t *testing.T) {
	cases := []struct {
		workload string
		synID    int
	}{
		{"btree", 16},
		{"hashmap-atomic", 8},
		{"memcached", 16},
		{"redis", 11},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/syn%d", c.workload, c.synID), func(t *testing.T) {
			res := run(t, c.workload, heavyInput(c.workload), bugs.NewSet().EnableSyn(c.synID))
			reports := Check(res.Trace.Events())
			found := false
			for _, r := range reports {
				if r.Rule == RuleUnflushedStore {
					found = true
				}
			}
			if !found {
				t.Fatalf("skipped flush not detected; reports: %v", reports)
			}
		})
	}
}

// TestDetectsSkippedFence: flush-without-fence at exit.
func TestDetectsSkippedFence(t *testing.T) {
	res := run(t, "redis", []byte("SET 1 1\n"), bugs.NewSet().EnableSyn(12))
	reports := Check(res.Trace.Events())
	found := false
	for _, r := range reports {
		if r.Rule == RuleUnfencedFlush || r.Rule == RuleUnflushedStore {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped fence not detected; reports: %v", reports)
	}
}

// TestDetectsRedundantTxAdd covers the paper's performance-bug signature
// for both the synthetic points and real Bugs 8–12.
func TestDetectsRedundantTxAdd(t *testing.T) {
	type tc struct {
		name  string
		wl    string
		input []byte
		bg    *bugs.Set
	}
	cases := []tc{
		{"syn-btree-split", "btree", heavyInput("btree"), bugs.NewSet().EnableSyn(7)},
		{"bug8", "hashmap-tx", []byte("i 1 1\n"), bugs.NewSet().EnableReal(bugs.Bug8HashmapTXRedundantAdd)},
		{"bug9", "rbtree", []byte("i 1 1\ni 2 2\n"), bugs.NewSet().EnableReal(bugs.Bug9RBTreeRedundantSetNew)},
		{"bug10", "rbtree", []byte("i 1 1\n"), bugs.NewSet().EnableReal(bugs.Bug10RBTreeRedundantAddFirst)},
		{"bug11", "rbtree", heavyInput("rbtree"), bugs.NewSet().EnableReal(bugs.Bug11RBTreeRedundantSetParent)},
		{"bug12", "btree", heavyInput("btree"), bugs.NewSet().EnableReal(bugs.Bug12BTreeRedundantAddInsert)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, c.wl, c.input, c.bg)
			reports := Check(res.Trace.Events())
			found := false
			for _, r := range reports {
				if r.Rule == RuleRedundantTxAdd {
					found = true
				}
			}
			if !found {
				t.Fatalf("redundant TX_ADD not detected; reports: %v", reports)
			}
		})
	}
}

// TestDetectsRedundantFlush covers Bug 7 (memcached pslab creation) and
// the synthetic redundant-flush points.
func TestDetectsRedundantFlush(t *testing.T) {
	type tc struct {
		name string
		wl   string
		in   []byte
		bg   *bugs.Set
	}
	cases := []tc{
		{"bug7", "memcached", []byte("set 1 1\n"), bugs.NewSet().EnableReal(bugs.Bug7MemcachedRedundantFlush)},
		{"syn-memcached", "memcached", []byte("set 1 1\n"), bugs.NewSet().EnableSyn(15)},
		{"syn-redis", "redis", []byte("SET 1 1\n"), bugs.NewSet().EnableSyn(13)},
		{"syn-atomic", "hashmap-atomic", []byte("i 1 1\n"), bugs.NewSet().EnableSyn(13)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, c.wl, c.in, c.bg)
			reports := Check(res.Trace.Events())
			found := false
			for _, r := range reports {
				if r.Rule == RuleRedundantFlush {
					found = true
				}
			}
			if !found {
				t.Fatalf("redundant flush not detected; reports: %v", reports)
			}
		})
	}
}

func TestSummaryAndClass(t *testing.T) {
	reports := []Report{
		{Rule: RuleRedundantFlush},
		{Rule: RuleRedundantFlush},
		{Rule: RuleUnflushedStore},
	}
	s := Summary(reports)
	if s[RuleRedundantFlush] != 2 || s[RuleUnflushedStore] != 1 {
		t.Fatalf("Summary = %v", s)
	}
	if !HasClass(reports, Performance) || !HasClass(reports, CrashConsistency) {
		t.Fatalf("HasClass wrong")
	}
	if RuleRedundantTxAdd.Class() != Performance || RuleStoreInTxNotLogged.Class() != CrashConsistency {
		t.Fatalf("rule class mapping wrong")
	}
}

func TestCheckSyntheticTrace(t *testing.T) {
	// Hand-built trace: store inside tx without backup.
	events := []trace.Event{
		{Kind: trace.TxBegin, Seq: 1},
		{Kind: trace.TxAdd, Off: 0, Len: 8, Seq: 2},
		{Kind: trace.Store, Off: 0, Len: 8, Seq: 3},   // logged: fine
		{Kind: trace.Store, Off: 100, Len: 8, Seq: 4}, // not logged: bug
		{Kind: trace.Flush, Off: 0, Len: 8, Seq: 5},
		{Kind: trace.Flush, Off: 100, Len: 8, Seq: 6},
		{Kind: trace.Fence, Seq: 7},
		{Kind: trace.TxEnd, Seq: 8},
	}
	reports := Check(events)
	if len(reports) != 1 || reports[0].Rule != RuleStoreInTxNotLogged {
		t.Fatalf("reports = %v", reports)
	}
}

func TestCheckLineGranularity(t *testing.T) {
	// A flush of one byte persists its whole line: a second store to the
	// same line before the flush is covered by it.
	events := []trace.Event{
		{Kind: trace.Store, Off: 0, Len: 8, Seq: 1},
		{Kind: trace.Store, Off: 32, Len: 8, Seq: 2},
		{Kind: trace.Flush, Off: 0, Len: 1, Seq: 3}, // flushes the whole line
		{Kind: trace.Fence, Seq: 4},
	}
	if reports := Check(events); len(reports) != 0 {
		t.Fatalf("reports = %v", reports)
	}
	_ = pmem.LineSize
}

func TestCheckNTStoreSelfQueues(t *testing.T) {
	// A non-temporal store needs only a fence, no flush.
	events := []trace.Event{
		{Kind: trace.NTStore, Off: 0, Len: 8, Seq: 1},
		{Kind: trace.Fence, Seq: 2},
	}
	if reports := Check(events); len(reports) != 0 {
		t.Fatalf("reports = %v", reports)
	}
	// Without the fence it is flushed-but-unfenced at exit.
	events = events[:1]
	reports := Check(events)
	if len(reports) != 1 || reports[0].Rule != RuleUnfencedFlush {
		t.Fatalf("reports = %v, want one flush-not-fenced", reports)
	}
}

func TestCheckInternalExemptions(t *testing.T) {
	// Internal (library metadata) stores are exempt from the user rules.
	events := []trace.Event{
		{Kind: trace.TxBegin, Seq: 1},
		{Kind: trace.Store, Off: 0, Len: 8, Seq: 2, Internal: true},
		{Kind: trace.TxEnd, Seq: 3},
	}
	if reports := Check(events); len(reports) != 0 {
		t.Fatalf("internal store flagged: %v", reports)
	}
}

func TestCheckAbortResetsTxState(t *testing.T) {
	// Stores after an abort are outside any transaction.
	events := []trace.Event{
		{Kind: trace.TxBegin, Seq: 1},
		{Kind: trace.TxAbort, Seq: 2},
		{Kind: trace.Store, Off: 0, Len: 8, Seq: 3},
		{Kind: trace.Flush, Off: 0, Len: 8, Seq: 4},
		{Kind: trace.Fence, Seq: 5},
	}
	if reports := Check(events); len(reports) != 0 {
		t.Fatalf("post-abort store flagged: %v", reports)
	}
}
