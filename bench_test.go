package pmfuzz

// One benchmark per table and figure of the paper's evaluation (§5).
// Each benchmark prints the regenerated rows/series via b.ReportMetric
// and (for the renderable artifacts) b.Log; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Budgets are simulated time. Override with PMFUZZ_BENCH_BUDGET_MS to
// scale every experiment up or down.

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pmfuzz/internal/core"
	"pmfuzz/internal/executor"
	"pmfuzz/internal/experiments"
	"pmfuzz/internal/obs"
	"pmfuzz/internal/oracle"
	"pmfuzz/internal/workloads"
	"pmfuzz/internal/workloads/bugs"
	"pmfuzz/internal/xfd"
)

// benchBudgetNS returns the per-session simulated budget.
func benchBudgetNS(defMS int64) int64 {
	if v := os.Getenv("PMFUZZ_BENCH_BUDGET_MS"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return ms * 1_000_000
		}
	}
	return defMS * 1_000_000
}

// BenchmarkFig13PMPathCoverage regenerates Figure 13: PM-path coverage
// under an equal simulated budget for all eight workloads × five
// configurations. The pmpaths metric is the figure's y-axis endpoint.
func BenchmarkFig13PMPathCoverage(b *testing.B) {
	budget := benchBudgetNS(200)
	for _, wl := range experiments.PaperWorkloads() {
		for _, cn := range core.ConfigNames() {
			b.Run(fmt.Sprintf("%s/%s", wl, cn), func(b *testing.B) {
				var paths, execs int
				for i := 0; i < b.N; i++ {
					cfg, err := core.DefaultConfig(wl, cn, budget, 7)
					if err != nil {
						b.Fatal(err)
					}
					f, err := core.New(cfg, nil)
					if err != nil {
						b.Fatal(err)
					}
					res := f.Run()
					paths, execs = res.PMPaths, res.Execs
				}
				b.ReportMetric(float64(paths), "pmpaths")
				b.ReportMetric(float64(execs), "execs")
			})
		}
	}
}

// BenchmarkFig13Geomean reports the paper's headline geo-mean PM-path
// ratio of PMFuzz over AFL++ (paper: 4.6x).
func BenchmarkFig13Geomean(b *testing.B) {
	budget := benchBudgetNS(200)
	var g, gSys, gImg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(nil, budget, 7)
		if err != nil {
			b.Fatal(err)
		}
		g = res.GeomeanSpeedup(core.PMFuzzAll, core.AFLPlusPlus)
		gSys = res.GeomeanSpeedup(core.AFLSysOpt, core.AFLPlusPlus)
		gImg = res.GeomeanSpeedup(core.PMFuzzAll, core.AFLImgFuzz)
	}
	b.ReportMetric(g, "pmfuzz/afl++")
	b.ReportMetric(gSys, "sysopt/afl++")
	b.ReportMetric(gImg, "pmfuzz/imgfuzz")
}

// BenchmarkTable2Configs profiles the five comparison points' execution
// throughput on one workload — the feature-cost view behind Table 2.
func BenchmarkTable2Configs(b *testing.B) {
	budget := benchBudgetNS(150)
	for _, cn := range core.ConfigNames() {
		b.Run(string(cn), func(b *testing.B) {
			var execsPerSimSec float64
			for i := 0; i < b.N; i++ {
				cfg, err := core.DefaultConfig("btree", cn, budget, 7)
				if err != nil {
					b.Fatal(err)
				}
				f, err := core.New(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				res := f.Run()
				execsPerSimSec = float64(res.Execs) / (float64(res.SimNS) / 1e9)
			}
			b.ReportMetric(execsPerSimSec, "execs/sim-sec")
		})
	}
}

// BenchmarkParallelScaling measures fleet throughput at 1/2/4/8 workers
// on the tree workload. Following the paper's §5.1 fleet setup (N AFL
// instances, equal wall clock), every worker burns the full simulated
// budget on its own clock shard and the merged time axis is the max over
// shards, so the scaling signal is execs per simulated second: an
// N-worker fleet should sustain close to N× the single-instance rate.
// Wall-clock execs/sec is reported alongside for the host-side cost.
func BenchmarkParallelScaling(b *testing.B) {
	budget := benchBudgetNS(100)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var execsPerSimSec float64
			totalExecs := 0
			for i := 0; i < b.N; i++ {
				cfg, err := core.DefaultConfig("btree", core.PMFuzzAll, budget, 7)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Workers = workers
				f, err := core.New(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				res := f.Run()
				execsPerSimSec = float64(res.Execs) / (float64(res.SimNS) / 1e9)
				totalExecs += res.Execs
			}
			b.ReportMetric(execsPerSimSec, "execs/sim-sec")
			b.ReportMetric(float64(totalExecs)/b.Elapsed().Seconds(), "target-execs/sec")
		})
	}
}

// fleetRun is one pmfuzz process's parsed summary output.
type fleetRun struct {
	execs                            int
	published, imported, dedup, errs int64
	bytesOut, bytesIn                int64
}

// runFleetMember spawns one pmfuzz process and parses its summary.
// An empty syncDir runs the plain solo session (no fleet flags at all —
// the deterministic baseline path).
func runFleetMember(bin, syncDir, id string, seed, budgetMS int64) (fleetRun, error) {
	args := []string{
		"-workload", "btree",
		"-budget-ms", strconv.FormatInt(budgetMS, 10),
		"-seed", strconv.FormatInt(seed, 10),
	}
	if syncDir != "" {
		args = append(args, "-sync-dir", syncDir, "-fuzzer-id", id, "-sync-every", "100ms")
	}
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		return fleetRun{}, fmt.Errorf("member %s: %v\n%s", id, err, out)
	}
	var r fleetRun
	sawExecs := false
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "executions:") {
			if _, err := fmt.Sscanf(line, "executions: %d", &r.execs); err != nil {
				return r, fmt.Errorf("member %s: bad executions line %q", id, line)
			}
			sawExecs = true
		}
		if strings.HasPrefix(line, "sync:") {
			if _, err := fmt.Sscanf(line,
				"sync: published %d, imported %d (%d dedup), errors %d, bytes out/in %d/%d",
				&r.published, &r.imported, &r.dedup, &r.errs, &r.bytesOut, &r.bytesIn); err != nil {
				return r, fmt.Errorf("member %s: bad sync line %q", id, line)
			}
		}
	}
	if !sawExecs {
		return r, fmt.Errorf("member %s printed no executions line:\n%s", id, out)
	}
	return r, nil
}

// BenchmarkFleetScaling measures the multi-process fleet end to end: N
// pmfuzz processes with distinct seeds share one -sync-dir, each burns
// the same simulated budget on btree, and corpus entries (inputs and
// crash-image blobs) flow through the sync directory. Following the
// BenchmarkParallelScaling convention the time axis is simulated — all
// members burn the full budget on their own clocks — so the scaling
// signal is aggregate execs per simulated second: the bar is >= 2.5x
// the solo rate at 4 processes. The sync traffic metrics (bytes moved,
// dedup hit rate) come from each member's own sync summary. The
// sync-overhead leg runs the same solo session with and without the
// fleet flags and reports the wall-clock cost of syncing against an
// empty fleet: the bar is < 5%.
func BenchmarkFleetScaling(b *testing.B) {
	budgetMS := benchBudgetNS(60) / 1_000_000
	simSec := float64(budgetMS) / 1e3
	bin := filepath.Join(b.TempDir(), "pmfuzz")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pmfuzz").CombinedOutput(); err != nil {
		b.Fatalf("building CLI: %v\n%s", err, out)
	}

	// runFleet launches n members concurrently over one fresh sync dir
	// (or solo without fleet flags when withSync is false).
	runFleet := func(b *testing.B, n int, withSync bool) []fleetRun {
		b.Helper()
		dir := ""
		if withSync {
			dir = b.TempDir()
		}
		runs := make([]fleetRun, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				runs[i], errs[i] = runFleetMember(bin, dir, fmt.Sprintf("f%d", i), int64(11+i), budgetMS)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		return runs
	}

	var soloRate float64
	for _, n := range []int{1, 2, 4} {
		n := n
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var agg float64
			var runs []fleetRun
			for i := 0; i < b.N; i++ {
				runs = runFleet(b, n, true)
				total := 0
				for _, r := range runs {
					total += r.execs
				}
				agg = float64(total) / simSec
			}
			b.ReportMetric(agg, "aggregate-execs/sim-sec")
			if n == 1 {
				soloRate = agg
			} else if soloRate > 0 {
				b.ReportMetric(agg/soloRate, "scaling-x")
			}
			var moved, imported, dedup, errCount float64
			for _, r := range runs {
				moved += float64(r.bytesOut + r.bytesIn)
				imported += float64(r.imported)
				dedup += float64(r.dedup)
				errCount += float64(r.errs)
			}
			b.ReportMetric(moved, "sync-bytes")
			b.ReportMetric(errCount, "sync-errors")
			if imported+dedup > 0 {
				b.ReportMetric(100*dedup/(imported+dedup), "dedup-hit-pct")
			}
		})
	}
	b.Run("sync-overhead", func(b *testing.B) {
		var with, without time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			runFleet(b, 1, false)
			without += time.Since(t0)
			t0 = time.Now()
			runFleet(b, 1, true)
			with += time.Since(t0)
		}
		b.ReportMetric(100*(with.Seconds()/without.Seconds()-1), "sync-overhead-pct")
	})
}

// BenchmarkTable3SyntheticBugs regenerates Table 3 one workload at a
// time: inject every synthetic bug, fuzz under PMFuzz and AFL++ w/
// SysOpt, hand test cases to the tools, count detections.
func BenchmarkTable3SyntheticBugs(b *testing.B) {
	budget := benchBudgetNS(300)
	for _, wl := range experiments.PaperWorkloads() {
		b.Run(wl, func(b *testing.B) {
			var row experiments.Table3Row
			for i := 0; i < b.N; i++ {
				res, err := experiments.Table3([]string{wl}, budget, 7, experiments.DefaultDetect())
				if err != nil {
					b.Fatal(err)
				}
				row = res.Rows[0]
			}
			b.ReportMetric(float64(row.Total), "injected")
			b.ReportMetric(float64(row.PMFuzz), "pmfuzz-found")
			b.ReportMetric(float64(row.AFLSysOpt), "aflsysopt-found")
		})
	}
}

// BenchmarkSec54RealBugs regenerates §5.4: reproduce each of the twelve
// real-world bugs with PMFuzz-generated test cases.
func BenchmarkSec54RealBugs(b *testing.B) {
	budget := benchBudgetNS(500)
	var detected int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RealBugs(budget, 7, experiments.DefaultDetect())
		if err != nil {
			b.Fatal(err)
		}
		detected = res.DetectedCount()
	}
	b.ReportMetric(float64(detected), "bugs-found")
	b.ReportMetric(float64(bugs.NumRealBugs), "bugs-total")
}

// BenchmarkSec541TimeToBug regenerates §5.4.1: the (simulated) time to
// generate the test case that exposes each real-world bug. The paper
// reports 2 s for the init-path bugs and 37–91 s for the deeper ones;
// the shape to preserve is init bugs ≪ deep bugs.
func BenchmarkSec541TimeToBug(b *testing.B) {
	budget := benchBudgetNS(500)
	for bug := bugs.RealBug(1); bug <= bugs.NumRealBugs; bug++ {
		bug := bug
		b.Run(fmt.Sprintf("bug%d", int(bug)), func(b *testing.B) {
			var ms float64 = -1
			for i := 0; i < b.N; i++ {
				res, err := experiments.RealBug1(bug, budget, 7, experiments.DefaultDetect())
				if err != nil {
					b.Fatal(err)
				}
				if res.Detected {
					ms = float64(res.SimNS) / 1e6
				}
			}
			b.ReportMetric(ms, "detect-sim-ms")
		})
	}
}

// BenchmarkAblation isolates the contribution of each PMFuzz design
// decision by disabling one at a time: crash-image generation (§3.2),
// PM-path feedback (§3.3), and indirect image generation (§3.1).
func BenchmarkAblation(b *testing.B) {
	budget := benchBudgetNS(300)
	base, err := core.DefaultConfig("hashmap-tx", core.PMFuzzAll, budget, 7)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name   string
		mutate func(core.Config) core.Config
	}{
		{"full", func(c core.Config) core.Config { return c }},
		{"no-crash-images", func(c core.Config) core.Config {
			c.MaxBarrierImages = 0
			c.ProbFailRate = 0
			return c
		}},
		{"no-pm-path-feedback", func(c core.Config) core.Config {
			c.Features.PMPathOpt = false
			return c
		}},
		{"no-image-generation", func(c core.Config) core.Config {
			c.Features.ImgFuzzIndirect = false
			c.MaxBarrierImages = 0
			c.ProbFailRate = 0
			return c
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var paths, crashEntries int
			for i := 0; i < b.N; i++ {
				f, err := core.New(v.mutate(base), nil)
				if err != nil {
					b.Fatal(err)
				}
				res := f.Run()
				paths = res.PMPaths
				crashEntries = 0
				for _, e := range res.Queue.Entries() {
					if e.IsCrashImage {
						crashEntries++
					}
				}
			}
			b.ReportMetric(float64(paths), "pmpaths")
			b.ReportMetric(float64(crashEntries), "crash-images")
		})
	}
}

// BenchmarkFuzzerThroughput is the raw end-to-end fuzzing speed: how
// many target executions per wall-clock second the whole stack sustains.
func BenchmarkFuzzerThroughput(b *testing.B) {
	budget := benchBudgetNS(100)
	b.ReportAllocs()
	totalExecs := 0
	for i := 0; i < b.N; i++ {
		cfg, err := core.DefaultConfig("hashmap-tx", core.PMFuzzAll, budget, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		f, err := core.New(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		res := f.Run()
		totalExecs += res.Execs
	}
	b.ReportMetric(float64(totalExecs)/b.Elapsed().Seconds(), "target-execs/sec")
}

// BenchmarkExecHotLoop measures the steady-state cost of one fuzzing
// execution — the hot path everything else multiplies. "fresh" allocates
// a new device (~2×poolsize), tracer (2×64 KiB), and output snapshot per
// run, the pre-arena behavior; "arena" reuses one executor.Arena exactly
// the way each fuzzing worker does (device reset in place, pooled
// tracer, recycled snapshot buffer) — the persistent-mode/forkserver
// analog. The acceptance bar for this PR: the arena leg sustains ≥1.5×
// the fresh leg's execs/sec with ≥80% fewer allocs/op.
func BenchmarkExecHotLoop(b *testing.B) {
	tc := executor.TestCase{Workload: "btree", Input: benchSweepInput(), Seed: 1}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := executor.Run(tc, executor.Options{})
			if res.Faulted() {
				b.Fatalf("execution faulted: err=%v panic=%v", res.Err, res.PanicVal)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
	})
	b.Run("arena", func(b *testing.B) {
		arena := executor.NewArena()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := executor.Run(tc, executor.Options{Arena: arena})
			if res.Faulted() {
				b.Fatalf("execution faulted: err=%v panic=%v", res.Err, res.PanicVal)
			}
			arena.Recycle(res)
			arena.RecycleImage(res.Image)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
	})
}

// BenchmarkTelemetryOverhead measures what the obs layer adds to the
// execution hot path, against the same arena loop as
// BenchmarkExecHotLoop. "off" is the baseline (nil shard — telemetry
// detached, the default); "shard" attaches a per-worker metrics shard
// and folds it into the registry at the coordinator's sampling cadence;
// "sinks" additionally runs a live session flushing every sink (status
// line to io.Discard, fuzzer_stats/plot_data and the JSONL trace in a
// temp dir). The PR's acceptance bar: the shard leg stays within 2% of
// off — telemetry must be effectively free where executions happen.
func BenchmarkTelemetryOverhead(b *testing.B) {
	tc := executor.TestCase{Workload: "btree", Input: benchSweepInput(), Seed: 1}
	loop := func(b *testing.B, shard *obs.Shard, m *obs.Metrics) {
		arena := executor.NewArena()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := executor.Run(tc, executor.Options{Arena: arena, Shard: shard})
			if res.Faulted() {
				b.Fatalf("execution faulted: err=%v panic=%v", res.Err, res.PanicVal)
			}
			arena.Recycle(res)
			arena.RecycleImage(res.Image)
			if m != nil && i%20 == 19 { // the engine's SampleEveryExecs cadence
				m.MergeShard(shard)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
	}
	b.Run("off", func(b *testing.B) { loop(b, nil, nil) })
	b.Run("shard", func(b *testing.B) {
		m := obs.NewMetrics("btree", "pmfuzz", 1, 1, 0)
		var sh obs.Shard
		loop(b, &sh, m)
	})
	b.Run("sinks", func(b *testing.B) {
		dir := b.TempDir()
		sess, err := obs.NewSession(obs.Config{
			Workload: "btree", FuzzConfig: "pmfuzz", Workers: 1, Seed: 1,
			StatusEvery: 50 * time.Millisecond, StatusW: io.Discard,
			OutDir:    dir,
			TracePath: filepath.Join(dir, "trace.jsonl"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Start(); err != nil {
			b.Fatal(err)
		}
		var sh obs.Shard
		loop(b, &sh, sess.M)
		b.StopTimer()
		if err := sess.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkWorkloadExecution measures single-execution cost per workload
// (the unit of all fuzzing throughput).
func BenchmarkWorkloadExecution(b *testing.B) {
	for _, wl := range experiments.PaperWorkloads() {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			prog, err := workloads.New(wl)
			if err != nil {
				b.Fatal(err)
			}
			input := prog.SeedInputs()[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := executor.Run(executor.TestCase{Workload: wl, Input: input, Seed: 1}, executor.Options{})
				if res.Faulted() {
					b.Fatalf("seed execution faulted: err=%v panic=%v", res.Err, res.PanicVal)
				}
			}
		})
	}
}

// benchSweepInput is the B-Tree input for the crash-image sweep
// benchmarks: enough inserts to cross node splits, plus a removal and a
// consistency check, yielding a few hundred ordering points.
func benchSweepInput() []byte {
	var in []byte
	for i := 1; i <= 20; i++ {
		in = append(in, []byte(fmt.Sprintf("i %d %d\n", i*5%23, i))...)
	}
	return append(in, []byte("r 5\nc\n")...)
}

// BenchmarkCrashImageSweep compares the two crash-image generation
// paths on B-Tree: "reexec" re-runs the input once per ordering point
// (the pre-optimization behavior, kept as executor.CrashImagesReexec),
// "sweep" journals copy-on-write deltas during ONE execution and
// materializes every barrier image from the journal. Both must produce
// byte-identical images — checked here before timing and pinned by
// TestSweepGoldenEquivalence.
func BenchmarkCrashImageSweep(b *testing.B) {
	tc := executor.TestCase{Workload: "btree", Input: benchSweepInput(), Seed: 3}
	old := executor.CrashImagesReexec(tc, executor.Options{}, 0, 0.002, 2)
	nw := executor.CrashImages(tc, executor.Options{}, 0, 0.002, 2)
	if len(old) == 0 || len(old) != len(nw) {
		b.Fatalf("result counts differ: reexec=%d sweep=%d", len(old), len(nw))
	}
	for i := range old {
		if old[i].Image.Hash() != nw[i].Image.Hash() {
			b.Fatalf("image %d: hash mismatch between reexec and sweep", i)
		}
	}
	b.Run("reexec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			executor.CrashImagesReexec(tc, executor.Options{}, 0, 0.002, 2)
		}
	})
	b.Run("sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			executor.CrashImages(tc, executor.Options{}, 0, 0.002, 2)
		}
	})
	// Growth in the barrier count: the re-execution path is O(barriers ×
	// ops), the journaled path pays one execution plus O(changed lines)
	// per materialized barrier, so doubling maxBarriers must far less
	// than double the sweep's ns/op.
	for _, mb := range []int{25, 50, 100, 200} {
		mb := mb
		b.Run(fmt.Sprintf("sweep-barriers-%d", mb), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				executor.CrashImages(tc, executor.Options{}, mb, 0, 0)
			}
		})
		b.Run(fmt.Sprintf("reexec-barriers-%d", mb), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				executor.CrashImagesReexec(tc, executor.Options{}, mb, 0, 0)
			}
		})
	}
}

// BenchmarkXFDSweep compares the cross-failure checker's pre-failure
// strategies: "per-barrier" re-executes the input for every ordering
// point (xfd.CheckPost), "sweep" materializes all crash states from one
// journaled run (xfd.CheckPostSweep). Post-failure executions remain
// per-point in both modes, so the delta here is the pre-failure side.
func BenchmarkXFDSweep(b *testing.B) {
	tc := executor.TestCase{Workload: "btree", Input: benchSweepInput(), Seed: 3}
	b.Run("per-barrier", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			xfd.CheckPost(tc, 0, 0.002, 2, nil)
		}
	})
	b.Run("sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			xfd.CheckPostSweep(tc, 0, 0.002, 2, nil)
		}
	})
}

// BenchmarkPrunedSweep measures the representative-state pruning layer:
// an oracle sweep that recovers one representative per behavioral
// equivalence class ("pruned") against per-member checking ("full", the
// pre-pruning behavior forced by Options.NoPrune). Equivalence — the
// identical violation set — is verified before timing; the reported
// metrics pin the sub-linear claim (recoveries_saved, reduction_x ≥ 3
// on btree at equal barriers).
func BenchmarkPrunedSweep(b *testing.B) {
	cases := []struct {
		name     string
		workload string
		input    []byte
	}{
		{"btree", "btree", benchSweepInput()},
		{"rbtree", "rbtree", benchSweepInput()},
		{"redis", "redis", []byte("SET 1 1\nSET 9 2\nSET 17 3\nSET 25 4\nDEL 9\nSET 33 5\nCHECK\n")},
	}
	for _, c := range cases {
		c := c
		tc := executor.TestCase{Workload: c.workload, Input: c.input, Seed: 3}
		pruned := oracle.Check(tc, oracle.Options{PreFence: true})
		full := oracle.Check(tc, oracle.Options{PreFence: true, NoPrune: true})
		if pruned.Skipped != "" || full.Skipped != "" {
			b.Fatalf("%s: oracle skipped (%q / %q)", c.name, pruned.Skipped, full.Skipped)
		}
		if len(pruned.Violations) != len(full.Violations) || pruned.Checked != full.Checked {
			b.Fatalf("%s: pruned and full sweeps disagree (%d/%d violations, %d/%d checked)",
				c.name, len(pruned.Violations), len(full.Violations), pruned.Checked, full.Checked)
		}
		perMember := full.Checked + 1
		b.Run(c.name+"/pruned", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				oracle.Check(tc, oracle.Options{PreFence: true})
			}
			b.ReportMetric(float64(pruned.Checked), "states")
			b.ReportMetric(float64(pruned.Classes), "classes")
			b.ReportMetric(float64(pruned.Recoveries), "recoveries")
			b.ReportMetric(float64(perMember-pruned.Recoveries), "recoveries_saved")
			b.ReportMetric(float64(perMember)/float64(pruned.Recoveries), "reduction_x")
			b.ReportMetric(float64(len(pruned.Violations)), "violations")
		})
		b.Run(c.name+"/full", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				oracle.Check(tc, oracle.Options{PreFence: true, NoPrune: true})
			}
			b.ReportMetric(float64(full.Checked), "states")
			b.ReportMetric(float64(full.Recoveries), "recoveries")
			b.ReportMetric(float64(len(full.Violations)), "violations")
		})
	}
}
