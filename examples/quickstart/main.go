// Quickstart: fuzz a PM program for a few (simulated) hundred
// milliseconds and inspect what PMFuzz produced — the corpus of
// two-part test cases (command inputs + PM images), the PM-path
// coverage, and any faults.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pmfuzz/internal/core"
)

func main() {
	// A test-case generation session needs a workload, a comparison
	// point (Table 2), a simulated-time budget, and a seed. Identical
	// seeds replay identically — the derandomization guarantee of §4.4.
	cfg, err := core.DefaultConfig("btree", core.PMFuzzAll, 300_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fuzzer, err := core.New(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	res := fuzzer.Run()

	fmt.Printf("fuzzed %q for %.0f simulated ms: %d executions\n",
		cfg.Workload, float64(res.SimNS)/1e6, res.Execs)
	fmt.Printf("covered %d PM paths\n", res.PMPaths)
	fmt.Printf("corpus: %d test cases, %d distinct PM images (%.0fx compressed)\n",
		res.Queue.Len(), res.Store.Len(), res.Store.CompressionRatio())

	// Each queue entry is a complete test case: input commands plus the
	// PM image they execute on. Crash images carry recovery states.
	normal, crash := 0, 0
	for _, e := range res.Queue.Entries() {
		if !e.HasImage {
			continue
		}
		if e.IsCrashImage {
			crash++
		} else {
			normal++
		}
	}
	fmt.Printf("image-bearing test cases: %d on normal images, %d on crash images\n",
		normal, crash)

	// The coverage time series is what Figure 13 plots.
	fmt.Println("\ncoverage over simulated time:")
	step := len(res.Series) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Series); i += step {
		s := res.Series[i]
		fmt.Printf("  %7.1f ms  %4d PM paths  %4d execs\n",
			float64(s.SimNS)/1e6, s.PMPaths, s.Execs)
	}
}
