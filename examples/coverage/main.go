// Coverage: a miniature Figure 13 — run the five Table 2 comparison
// points on one workload under the same simulated budget and compare PM
// path coverage, demonstrating why PM-aware feedback and indirect image
// generation matter.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"

	"pmfuzz/internal/core"
)

func main() {
	const budget = 400_000_000 // 400 simulated ms
	workload := "redis"

	fmt.Printf("workload %q, %d simulated ms per configuration\n\n", workload, budget/1_000_000)
	fmt.Printf("%-20s %9s %9s %9s %8s\n", "configuration", "PM paths", "execs", "corpus", "images")

	results := map[core.ConfigName]*core.Result{}
	for _, name := range core.ConfigNames() {
		cfg, err := core.DefaultConfig(workload, name, budget, 1)
		if err != nil {
			log.Fatal(err)
		}
		fuzzer, err := core.New(cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		res := fuzzer.Run()
		results[name] = res
		fmt.Printf("%-20s %9d %9d %9d %8d\n",
			name, res.PMPaths, res.Execs, res.Queue.Len(), res.Store.Len())
	}

	pm := float64(results[core.PMFuzzAll].PMPaths)
	afl := float64(results[core.AFLPlusPlus].PMPaths)
	img := float64(results[core.AFLImgFuzz].PMPaths)
	fmt.Printf("\nPMFuzz / AFL++ PM-path ratio:        %.2fx (paper geo-mean: 4.6x)\n", pm/afl)
	fmt.Printf("PMFuzz / AFL++ w/ ImgFuzz ratio:     %.2fx (direct image mutation mostly\n", pm/img)
	fmt.Println("                                      produces invalid pool states, §5.2)")

	fmt.Println("\nWhy: PMFuzz reuses the program logic to mutate images (every")
	fmt.Println("generated image is a valid persistent state), injects failures at")
	fmt.Println("ordering points for crash images, and prioritizes test cases that")
	fmt.Println("cover new PM paths (Algorithm 2) instead of only new branches.")
}
