// Bughunt: the full PMFuzz workflow of Figure 9 against a buggy program.
// We enable one of the paper's real-world bugs (Bug 1: Hashmap-TX's
// creation transaction is undone by a failure but never re-run,
// hashmap_tx.c:402), let PMFuzz generate test cases, and hand them to
// the testing tools.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"log"

	"pmfuzz/internal/core"
	"pmfuzz/internal/experiments"
	"pmfuzz/internal/workloads/bugs"
)

func main() {
	bug := bugs.Bug1HashmapTXCreateNotRetried
	fmt.Printf("hunting: %s\n\n", bug)

	bg := bugs.NewSet().EnableReal(bug)
	cfg, err := core.DefaultConfig("hashmap-tx", core.PMFuzzAll, 500_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fuzzer, err := core.New(cfg, bg)
	if err != nil {
		log.Fatal(err)
	}
	res := fuzzer.Run()

	fmt.Printf("fuzzing: %d executions, %d PM paths, %d test cases, %d images\n",
		res.Execs, res.PMPaths, res.Queue.Len(), res.Store.Len())

	// Step ⑤: the fuzzer itself observes faults while reusing crash
	// images — a crash inside the creation transaction rolls the map
	// pointer back to NULL, and the buggy program never re-creates it.
	for _, f := range res.Faults {
		fmt.Printf("fault @ %.1f simulated ms: %s\n", float64(f.SimNS)/1e6, f.Msg)
	}

	det := experiments.DetectWithTools(res, bg, bug.IsPerformance(), experiments.DefaultDetect())
	if det.Detected {
		fmt.Printf("\ndetected by %s at %.1f simulated ms", det.By, float64(det.SimNS)/1e6)
		fmt.Println(" (the paper reports 2 wall-clock seconds for this bug class, §5.4.1)")
	} else {
		fmt.Println("\nnot detected — try a larger budget")
	}

	// Contrast: the fixed program under the same session stays silent.
	fixedFuzzer, err := core.New(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fixedRes := fixedFuzzer.Run()
	fixedDet := experiments.DetectWithTools(fixedRes, nil, false, experiments.DefaultDetect())
	fmt.Printf("\nfixed program, same budget: %d faults, detected=%v\n",
		len(fixedRes.Faults), fixedDet.Detected)
}
