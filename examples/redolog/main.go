// Redo logging: the write-ahead counterpart of the undo-log
// transactions the workloads use (§2.1 lists undo/redo logging and
// checkpointing as the classic crash-consistency mechanisms). This
// example stages a multi-field update in a redo log, crashes the program
// at every ordering point of the commit protocol, and shows that
// recovery always lands on all-or-nothing — never a torn batch.
//
//	go run ./examples/redolog
package main

import (
	"fmt"
	"log"

	"pmfuzz/internal/pmem"
	"pmfuzz/internal/pmemobj"
)

func main() {
	outcomes := map[string]int{}

	for barrier := 1; ; barrier++ {
		dev := pmem.NewDevice(512 * 1024)
		pool, err := pmemobj.Create(dev, "redo-demo", pmemobj.Options{Derandomize: true})
		if err != nil {
			log.Fatal(err)
		}
		root, err := pool.Root(64)
		if err != nil {
			log.Fatal(err)
		}
		rlog, err := pool.NewRedoLog(1024)
		if err != nil {
			log.Fatal(err)
		}
		logOid := rlog.Oid()
		start := dev.Barriers()

		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.Crash); !ok {
						panic(r)
					}
					c = true
				}
			}()
			dev.SetInjector(pmem.BarrierFailure{N: start + barrier})
			// Stage a three-field "account transfer" and commit it.
			must(rlog.RecordU64(root, 0, 100)) // balance A
			must(rlog.RecordU64(root, 8, 200)) // balance B
			must(rlog.RecordU64(root, 16, 1))  // transfer sequence number
			rlog.Commit()
			return false
		}()

		// Reboot: reopen the pool and re-attach the redo log (recovery
		// replays a valid-but-unapplied batch).
		img := &pmem.Image{Layout: "redo-demo", Data: dev.PersistedSnapshot()}
		pool2, err := pmemobj.Open(pmem.NewDeviceFromImage(img), "redo-demo")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := pmemobj.OpenRedoLog(pool2, logOid, 1024); err != nil {
			log.Fatal(err)
		}
		a, b, seq := pool2.U64(root, 0), pool2.U64(root, 8), pool2.U64(root, 16)
		switch {
		case a == 0 && b == 0 && seq == 0:
			outcomes["nothing (crash before the commit point)"]++
		case a == 100 && b == 200 && seq == 1:
			outcomes["everything (commit point persisted)"]++
		default:
			log.Fatalf("TORN BATCH at barrier %d: %d %d %d", barrier, a, b, seq)
		}
		if !crashed {
			break // the injected barrier was past the end of the protocol
		}
	}

	fmt.Println("crash sweep across the redo-commit protocol:")
	for outcome, n := range outcomes {
		fmt.Printf("  %2d failure points -> %s\n", n, outcome)
	}
	fmt.Println("no failure point produced a torn batch: redo commit is atomic")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
