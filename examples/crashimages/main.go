// Crash images and cross-failure detection: reproduce the paper's
// Example 2 (Figure 3) — a PM database whose tail-append forgets to back
// up the previous tail's next pointer. The bug is invisible to normal
// execution; it only corrupts state when a failure interrupts the
// update. This example walks the full §3.2 pipeline by hand:
//
//  1. run a command sequence that forces tail appends,
//  2. inject failures at every ordering point to generate crash images,
//  3. run the recovery + workload on each crash image under the
//     XFDetector-analog and watch the bug surface.
//
// go run ./examples/crashimages
package main

import (
	"fmt"

	"pmfuzz/internal/executor"
	"pmfuzz/internal/pmem"
	"pmfuzz/internal/workloads/bugs"
	"pmfuzz/internal/xfd"
)

func main() {
	// Keys 1, 9, 17 collide in the redis analog's 8-bucket table, so the
	// second and third SETs append at the tail of the chain — the buggy
	// code path (Figure 3 line 32).
	input := []byte("SET 1 10\nSET 9 20\nSET 17 30\nCHECK\n")

	fixed := executor.TestCase{Workload: "redis", Input: input, Seed: 1}
	buggy := executor.TestCase{
		Workload: "redis",
		Input:    input,
		Seed:     1,
		// Synthetic point 5 removes the TX_ADD of the tail's next field —
		// exactly the Example 2 bug.
		Bugs: bugs.NewSet().EnableSyn(5),
	}

	// How many ordering points does the execution have?
	clean := executor.Run(fixed, executor.Options{})
	fmt.Printf("clean run: %d commands, %d ordering points\n", clean.Commands, clean.Barriers)

	// Sweep failures across every ordering point for both versions.
	for name, tc := range map[string]executor.TestCase{"fixed": fixed, "buggy": buggy} {
		crashImages := 0
		findings := 0
		var first *xfd.Report
		for b := 1; b <= clean.Barriers; b++ {
			pre := tc
			pre.Injector = pmem.BarrierFailure{N: b}
			res := executor.Run(pre, executor.Options{})
			if !res.Crashed {
				continue
			}
			crashImages++
			reports := xfd.CheckPoint(tc, pmem.BarrierFailure{N: b}, nil)
			if len(reports) > 0 && first == nil {
				r := reports[0]
				first = &r
			}
			findings += len(reports)
		}
		fmt.Printf("\n%s program: %d crash images, %d cross-failure findings\n",
			name, crashImages, findings)
		if first != nil {
			fmt.Printf("  first finding: %s\n", *first)
		}
	}

	fmt.Println("\nThe fixed program recovers cleanly from every failure point;")
	fmt.Println("the buggy one loses the tail link whenever the failure lands")
	fmt.Println("inside the un-backed-up update — found only because the test")
	fmt.Println("case included a crash image (the paper's Requirement 2).")
}
